#include "lzw/stream_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>
#include <vector>

#include "core/contracts.h"
#include "core/crc32.h"

namespace tdc::lzw {

namespace {

// Byte layout of both containers, pinned at compile time against the
// documented §8 table (core/contracts.h static_asserts the offsets chain).
namespace v1 = contracts::container_v1;
namespace v2 = contracts::container_v2;
namespace v3 = contracts::container_v3;

constexpr char kMagicV1[8] = {'T', 'D', 'C', 'L', 'Z', 'W', '1', '\0'};
constexpr char kMagicV2[8] = {'T', 'D', 'C', 'L', 'Z', 'W', '2', '\0'};

// Plausibility caps applied before any size-driven allocation, so a fuzzed
// header cannot demand terabytes. Real images sit far below all of them.
constexpr std::uint64_t kMaxCodeCount = 1ull << 40;
constexpr std::uint64_t kMaxOriginalBits = 1ull << 48;
constexpr std::uint32_t kMaxDictSize = 1u << 20;
constexpr std::uint32_t kMaxChunkCount = 1u << 20;
constexpr std::uint32_t kMinChunkBytes = 64;

// ---------------------------------------------------------------- encoding

constexpr std::uint32_t kMaxRecordPayload = 1u << 30;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Bounded, offset-tracking reads from the input stream.
struct ByteSource {
  std::istream& in;
  std::uint64_t offset = 0;

  /// Reads exactly n bytes; false on a short read (offset then reports how
  /// many bytes the stream actually held).
  bool read(std::uint8_t* dst, std::size_t n) {
    in.read(reinterpret_cast<char*>(dst), static_cast<std::streamsize>(n));
    const auto got = static_cast<std::uint64_t>(in.gcount());
    offset += got;
    return got == n;
  }
};

Error truncated(ErrorKind kind, const ByteSource& src, const std::string& what) {
  Error err{kind, what};
  err.byte_offset = static_cast<std::int64_t>(src.offset);
  return err;
}

/// Shared post-header plausibility checks (both container versions).
Status check_image_header(const CompressedImage& image, std::uint64_t payload_bits) {
  const LzwConfig& c = image.config;
  if (std::string why = c.check(); !why.empty()) {
    return Error{ErrorKind::ConfigMismatch, why};
  }
  if (c.dict_size > kMaxDictSize) {
    return Error{ErrorKind::ConfigMismatch,
                 "dict_size " + std::to_string(c.dict_size) + " exceeds the container cap"};
  }
  if (image.code_count > kMaxCodeCount || image.original_bits > kMaxOriginalBits) {
    return Error{ErrorKind::ConfigMismatch, "implausible code_count / original_bits"};
  }
  // The payload must hold exactly code_count fixed-width codes — or, with
  // variable-width packing, between 1 and C_E bits per code.
  const std::uint64_t max_bits = image.code_count * c.code_bits();
  const bool consistent = c.variable_width
                              ? payload_bits >= image.code_count && payload_bits <= max_bits
                              : payload_bits == max_bits;
  if (!consistent) {
    return Error{ErrorKind::ConfigMismatch,
                 "payload of " + std::to_string(payload_bits) + " bits cannot hold " +
                     std::to_string(image.code_count) + " codes of " +
                     (c.variable_width ? "<= " : "") + std::to_string(c.code_bits()) +
                     " bits"};
  }
  if (image.original_bits > 0 && image.code_count == 0) {
    return Error{ErrorKind::ConfigMismatch, "original_bits > 0 but code_count == 0"};
  }
  return {};
}

/// Reads `payload_bytes` in bounded slabs (so a lying header cannot force a
/// giant up-front allocation) into `payload`.
Status read_payload(ByteSource& src, std::uint64_t payload_bytes,
                    std::vector<std::uint8_t>& payload) {
  constexpr std::uint64_t kSlab = 64 * 1024;
  payload.clear();
  while (payload.size() < payload_bytes) {
    const std::uint64_t want = std::min<std::uint64_t>(kSlab, payload_bytes - payload.size());
    const std::size_t base = payload.size();
    payload.resize(base + want);
    if (!src.read(payload.data() + base, static_cast<std::size_t>(want))) {
      return truncated(ErrorKind::TruncatedPayload, src,
                       "payload ends after " +
                           std::to_string(src.offset) + " container bytes (" +
                           std::to_string(payload_bytes) + " payload bytes declared)");
    }
  }
  return {};
}

// ---------------------------------------------------------------- v1 body

Result<CompressedImage> read_image_v1(ByteSource& src) {
  std::array<std::uint8_t, v1::kFixedHeaderBytes - v1::kMagicBytes> fixed;
  if (!src.read(fixed.data(), fixed.size())) {
    return truncated(ErrorKind::TruncatedHeader, src, "TDCLZW1 header is 48 bytes");
  }
  CompressedImage image;
  image.config.dict_size = get_u32(&fixed[0]);
  image.config.char_bits = get_u32(&fixed[4]);
  image.config.entry_bits = get_u32(&fixed[8]);
  image.config.variable_width = get_u32(&fixed[12]) != 0;
  image.original_bits = get_u64(&fixed[16]);
  image.code_count = get_u64(&fixed[24]);
  const std::uint64_t payload_bits = get_u64(&fixed[32]);
  image.container.version = 1;
  image.container.header_bytes = src.offset;
  image.container.payload_bytes = (payload_bits + 7) / 8;

  if (Status s = check_image_header(image, payload_bits); !s.ok()) return s.error();

  std::vector<std::uint8_t> payload;
  if (Status s = read_payload(src, image.container.payload_bytes, payload); !s.ok()) {
    return s.error();
  }
  image.stream = bits::BitWriter::from_bytes(payload.data(),
                                             static_cast<std::size_t>(payload_bits));
  return image;
}

// ---------------------------------------------------------------- v3 body

/// Payload of a version-3 (multi-codec) image: a sequence of chunk records.
/// The fixed header and chunk CRC table are already parsed and CRC-verified;
/// `image` carries the header fields. Integrity order: whole-payload CRC
/// first (record boundaries come from record headers, so framing cannot be
/// trusted before the bytes are), then the per-record CRCs localizing any
/// table/record drift, then structural and semantic consistency.
Result<CompressedImage> read_image_v3_body(ByteSource& src, CompressedImage image,
                                           std::uint64_t payload_bits,
                                           std::uint32_t payload_crc,
                                           const std::vector<std::uint8_t>& chunk_table) {
  const LzwConfig& c = image.config;
  if (std::string why = c.check(); !why.empty()) {
    return Error{ErrorKind::ConfigMismatch, why};
  }
  if (c.dict_size > kMaxDictSize) {
    return Error{ErrorKind::ConfigMismatch,
                 "dict_size " + std::to_string(c.dict_size) + " exceeds the container cap"};
  }
  if (image.original_bits > kMaxOriginalBits) {
    return Error{ErrorKind::ConfigMismatch, "implausible original_bits"};
  }
  if (payload_bits % 8 != 0) {
    return Error{ErrorKind::ConfigMismatch,
                 "multi-codec payload is byte-oriented; payload_bits must be a multiple of 8"};
  }
  if (image.code_count != image.container.chunk_count) {
    return Error{ErrorKind::ConfigMismatch,
                 "record count " + std::to_string(image.code_count) +
                     " does not match chunk_count " +
                     std::to_string(image.container.chunk_count)};
  }

  std::vector<std::uint8_t> payload;
  if (Status s = read_payload(src, image.container.payload_bytes, payload); !s.ok()) {
    return s.error();
  }
  if (crc32(payload) != payload_crc) {
    Error err{ErrorKind::PayloadCrcMismatch, "whole-payload CRC32 check failed"};
    err.byte_offset = static_cast<std::int64_t>(image.container.header_bytes);
    return err;
  }

  // Bytes are authentic; walk the record sequence.
  std::uint64_t pos = 0;
  std::uint64_t trits_total = 0;
  image.chunks.reserve(image.container.chunk_count);
  for (std::uint32_t i = 0; i < image.container.chunk_count; ++i) {
    if (payload.size() - pos < v3::kRecordHeaderBytes) {
      Error err{ErrorKind::ConfigMismatch,
                "payload ends inside the header of record " + std::to_string(i)};
      err.chunk_index = i;
      return err;
    }
    const std::uint8_t* rec = payload.data() + pos;
    ChunkRecord record;
    record.codec_id = rec[v3::kOffCodecId];
    const std::uint8_t flags = rec[v3::kOffRecordFlags];
    const std::uint32_t reserved = rec[v3::kOffReserved] | (rec[v3::kOffReserved + 1] << 8);
    record.original_trits = get_u64(rec + v3::kOffOriginalTrits);
    const std::uint32_t record_bytes = get_u32(rec + v3::kOffPayloadBytes);
    if (flags != 0 || reserved != 0) {
      Error err{ErrorKind::ConfigMismatch,
                "record " + std::to_string(i) + " sets reserved header bits"};
      err.chunk_index = i;
      return err;
    }
    if (record_bytes > kMaxRecordPayload ||
        record_bytes > payload.size() - pos - v3::kRecordHeaderBytes) {
      Error err{ErrorKind::ConfigMismatch,
                "record " + std::to_string(i) + " declares " +
                    std::to_string(record_bytes) + " payload bytes past the container"};
      err.chunk_index = i;
      return err;
    }
    const std::uint64_t whole = v3::kRecordHeaderBytes + record_bytes;
    if (crc32(rec, static_cast<std::size_t>(whole)) != get_u32(&chunk_table[4 * i])) {
      Error err{ErrorKind::ChunkCrcMismatch,
                "record " + std::to_string(i) + " does not match its CRC table entry"};
      err.chunk_index = i;
      err.byte_offset = static_cast<std::int64_t>(image.container.header_bytes + pos);
      return err;
    }
    record.payload.assign(rec + v3::kRecordHeaderBytes, rec + whole);
    trits_total += record.original_trits;
    image.chunks.push_back(std::move(record));
    pos += whole;
  }
  if (pos != payload.size()) {
    return Error{ErrorKind::ConfigMismatch,
                 std::to_string(payload.size() - pos) +
                     " payload bytes left over after the last record"};
  }
  if (trits_total != image.original_bits) {
    return Error{ErrorKind::ConfigMismatch,
                 "records expand to " + std::to_string(trits_total) +
                     " trits but the header declares " +
                     std::to_string(image.original_bits)};
  }

  image.stream = bits::BitWriter::from_bytes(payload.data(),
                                             static_cast<std::size_t>(payload_bits));
  return image;
}

// ---------------------------------------------------------------- v2 body

Result<CompressedImage> read_image_v2(ByteSource& src,
                                      const std::array<std::uint8_t, 8>& magic) {
  // Bytes [kMagicBytes, kFixedHeaderBytes) of the container; each field is
  // read through its §8 offset so the layout contract and the reader can
  // never drift apart.
  std::array<std::uint8_t, v2::kFixedHeaderBytes - v2::kMagicBytes> fixed;
  if (!src.read(fixed.data(), fixed.size())) {
    return truncated(ErrorKind::TruncatedHeader, src, "TDCLZW2 fixed header is 64 bytes");
  }
  const auto field = [&fixed](std::uint32_t offset) {
    return fixed.data() + (offset - v2::kMagicBytes);
  };
  const std::uint32_t version = get_u32(field(v2::kOffVersion));
  if (version != 2 && version != v3::kVersion) {
    Error err{ErrorKind::UnsupportedVersion,
              "container declares format version " + std::to_string(version) +
                  "; this reader supports 1, 2 and 3"};
    err.byte_offset = 8;
    return err;
  }

  CompressedImage image;
  image.config.dict_size = get_u32(field(v2::kOffDictSize));
  image.config.char_bits = get_u32(field(v2::kOffCharBits));
  image.config.entry_bits = get_u32(field(v2::kOffEntryBits));
  image.config.variable_width = (get_u32(field(v2::kOffFlags)) & 1u) != 0;
  image.original_bits = get_u64(field(v2::kOffOriginalBits));
  image.code_count = get_u64(field(v2::kOffCodeCount));
  const std::uint64_t payload_bits = get_u64(field(v2::kOffPayloadBits));
  const std::uint32_t payload_crc = get_u32(field(v2::kOffPayloadCrc));
  image.container.version = version;
  image.container.chunk_bytes = get_u32(field(v2::kOffChunkBytes));
  image.container.chunk_count = get_u32(field(v2::kOffChunkCount));
  image.container.payload_bytes = (payload_bits + 7) / 8;

  // The chunk table length comes from a yet-unverified header, so cap it
  // before allocating; the header CRC then vouches for the exact value.
  if (image.container.chunk_count > kMaxChunkCount) {
    Error err{ErrorKind::ConfigMismatch,
              "chunk table of " + std::to_string(image.container.chunk_count) +
                  " entries exceeds the container cap"};
    err.byte_offset = 60;
    return err;
  }
  std::vector<std::uint8_t> chunk_table(4ull * image.container.chunk_count);
  if (!src.read(chunk_table.data(), chunk_table.size())) {
    return truncated(ErrorKind::TruncatedHeader, src, "stream ends inside the chunk CRC table");
  }
  std::array<std::uint8_t, 4> stored_header_crc;
  if (!src.read(stored_header_crc.data(), stored_header_crc.size())) {
    return truncated(ErrorKind::TruncatedHeader, src, "stream ends before header_crc32");
  }
  image.container.header_bytes = src.offset;

  std::uint32_t crc = crc32(magic.data(), magic.size());
  crc = crc32(fixed.data(), fixed.size(), crc);
  crc = crc32(chunk_table.data(), chunk_table.size(), crc);
  if (crc != get_u32(stored_header_crc.data())) {
    Error err{ErrorKind::HeaderCrcMismatch,
              "header CRC32 check failed — the configurator block is damaged"};
    err.byte_offset = static_cast<std::int64_t>(src.offset - 4);
    return err;
  }

  // Header is authentic from here on; inconsistencies are tool-chain bugs
  // or deliberate tampering, reported as ConfigMismatch.
  if (version == v3::kVersion) {
    return read_image_v3_body(src, std::move(image), payload_bits, payload_crc,
                              chunk_table);
  }
  if (Status s = check_image_header(image, payload_bits); !s.ok()) return s.error();
  const std::uint32_t cb = image.container.chunk_bytes;
  if (cb != 0 && cb < kMinChunkBytes) {
    return Error{ErrorKind::ConfigMismatch, "chunk_bytes must be 0 or >= 64"};
  }
  const std::uint64_t expected_chunks =
      cb == 0 ? 0 : (image.container.payload_bytes + cb - 1) / cb;
  if (expected_chunks != image.container.chunk_count) {
    return Error{ErrorKind::ConfigMismatch,
                 "chunk_count " + std::to_string(image.container.chunk_count) +
                     " does not match ceil(payload_bytes / chunk_bytes) = " +
                     std::to_string(expected_chunks)};
  }

  std::vector<std::uint8_t> payload;
  if (Status s = read_payload(src, image.container.payload_bytes, payload); !s.ok()) {
    return s.error();
  }

  // Chunk CRCs first: they localize the damage to a byte range, which the
  // whole-payload CRC cannot.
  std::uint64_t corrupt_chunks = 0;
  std::int64_t first_bad = -1;
  for (std::uint64_t i = 0; i < image.container.chunk_count; ++i) {
    const std::uint64_t begin = i * cb;
    const std::uint64_t end = std::min<std::uint64_t>(begin + cb, payload.size());
    if (crc32(payload.data() + begin, static_cast<std::size_t>(end - begin)) !=
        get_u32(&chunk_table[4 * i])) {
      ++corrupt_chunks;
      if (first_bad < 0) first_bad = static_cast<std::int64_t>(i);
    }
  }
  if (corrupt_chunks > 0) {
    Error err{ErrorKind::ChunkCrcMismatch,
              std::to_string(corrupt_chunks) + " of " +
                  std::to_string(image.container.chunk_count) +
                  " payload chunks damaged (first: chunk " + std::to_string(first_bad) +
                  ", payload bytes " + std::to_string(first_bad * cb) + ".." +
                  std::to_string(std::min<std::uint64_t>((first_bad + 1) * cb,
                                                         payload.size()) - 1) +
                  ")"};
    err.chunk_index = first_bad;
    err.byte_offset =
        static_cast<std::int64_t>(image.container.header_bytes) + first_bad * cb;
    return err;
  }
  if (crc32(payload) != payload_crc) {
    Error err{ErrorKind::PayloadCrcMismatch, "whole-payload CRC32 check failed"};
    err.byte_offset = static_cast<std::int64_t>(image.container.header_bytes);
    return err;
  }

  image.stream = bits::BitWriter::from_bytes(payload.data(),
                                             static_cast<std::size_t>(payload_bits));
  return image;
}

}  // namespace

// ---------------------------------------------------------------- writers

void write_image(std::ostream& out, const EncodeResult& encoded,
                 const ContainerOptions& options) {
  TDC_REQUIRE(options.version == 1 || options.version == 2,
              "write_image: unknown container version " +
                  std::to_string(options.version));
  TDC_REQUIRE(options.version == 1 || options.chunk_bytes == 0 ||
                  options.chunk_bytes >= kMinChunkBytes,
              "write_image: chunk_bytes must be 0 or >= 64");

  const auto& payload = encoded.stream.bytes();
  std::vector<std::uint8_t> header;
  if (options.version == 1) {
    header.insert(header.end(), kMagicV1, kMagicV1 + sizeof kMagicV1);
    put_u32(header, encoded.config.dict_size);
    put_u32(header, encoded.config.char_bits);
    put_u32(header, encoded.config.entry_bits);
    put_u32(header, encoded.config.variable_width ? 1u : 0u);
    put_u64(header, encoded.original_bits);
    put_u64(header, encoded.codes.size());
    put_u64(header, encoded.stream.bit_count());
  } else {
    const std::uint32_t cb = options.chunk_bytes;
    const std::uint64_t chunk_count =
        cb == 0 ? 0 : (static_cast<std::uint64_t>(payload.size()) + cb - 1) / cb;
    header.insert(header.end(), kMagicV2, kMagicV2 + sizeof kMagicV2);
    put_u32(header, 2);
    put_u32(header, encoded.config.dict_size);
    put_u32(header, encoded.config.char_bits);
    put_u32(header, encoded.config.entry_bits);
    put_u32(header, encoded.config.variable_width ? 1u : 0u);
    put_u64(header, encoded.original_bits);
    put_u64(header, encoded.codes.size());
    put_u64(header, encoded.stream.bit_count());
    put_u32(header, crc32(payload));
    put_u32(header, cb);
    put_u32(header, static_cast<std::uint32_t>(chunk_count));
    for (std::uint64_t i = 0; i < chunk_count; ++i) {
      const std::uint64_t begin = i * cb;
      const std::uint64_t end = std::min<std::uint64_t>(begin + cb, payload.size());
      put_u32(header, crc32(payload.data() + begin, static_cast<std::size_t>(end - begin)));
    }
    put_u32(header, crc32(header));
  }

  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  if (!out) Error{ErrorKind::IoError, "write_image: stream error"}.raise();
}

void write_image_v3(std::ostream& out, const LzwConfig& config,
                    std::uint64_t original_bits, std::uint32_t chunk_trits,
                    const std::vector<ChunkRecord>& chunks) {
  TDC_REQUIRE(chunks.size() <= kMaxChunkCount,
              "write_image_v3: record count exceeds the container cap");
  std::uint64_t trits_total = 0;
  for (const ChunkRecord& r : chunks) {
    TDC_REQUIRE(r.payload.size() <= kMaxRecordPayload,
                "write_image_v3: record payload exceeds the container cap");
    trits_total += r.original_trits;
  }
  TDC_REQUIRE(trits_total == original_bits,
              "write_image_v3: records expand to " + std::to_string(trits_total) +
                  " trits, not the declared " + std::to_string(original_bits));

  std::vector<std::uint8_t> payload;
  std::vector<std::uint32_t> record_crcs;
  record_crcs.reserve(chunks.size());
  for (const ChunkRecord& r : chunks) {
    const std::size_t base = payload.size();
    payload.push_back(r.codec_id);
    payload.push_back(0);  // record flags (reserved)
    payload.push_back(0);  // reserved u16
    payload.push_back(0);
    put_u64(payload, r.original_trits);
    put_u32(payload, static_cast<std::uint32_t>(r.payload.size()));
    payload.insert(payload.end(), r.payload.begin(), r.payload.end());
    record_crcs.push_back(crc32(payload.data() + base, payload.size() - base));
  }

  std::vector<std::uint8_t> header;
  header.insert(header.end(), kMagicV2, kMagicV2 + sizeof kMagicV2);
  put_u32(header, v3::kVersion);
  put_u32(header, config.dict_size);
  put_u32(header, config.char_bits);
  put_u32(header, config.entry_bits);
  put_u32(header, config.variable_width ? 1u : 0u);
  put_u64(header, original_bits);
  put_u64(header, chunks.size());  // code_count repeats the record count
  put_u64(header, static_cast<std::uint64_t>(payload.size()) * 8);
  put_u32(header, crc32(payload));
  put_u32(header, chunk_trits);
  put_u32(header, static_cast<std::uint32_t>(chunks.size()));
  for (const std::uint32_t crc : record_crcs) put_u32(header, crc);
  put_u32(header, crc32(header));

  out.write(reinterpret_cast<const char*>(header.data()),
            static_cast<std::streamsize>(header.size()));
  out.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  if (!out) Error{ErrorKind::IoError, "write_image_v3: stream error"}.raise();
}

void write_image_v3_file(const std::string& path, const LzwConfig& config,
                         std::uint64_t original_bits, std::uint32_t chunk_trits,
                         const std::vector<ChunkRecord>& chunks) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    Error{ErrorKind::IoError, "write_image_v3_file: cannot open " + path}.raise();
  }
  write_image_v3(out, config, original_bits, chunk_trits, chunks);
}

// ---------------------------------------------------------------- readers

Result<CompressedImage> try_read_image(std::istream& in) {
  ByteSource src{in};
  std::array<std::uint8_t, 8> magic;
  if (!src.read(magic.data(), magic.size())) {
    return truncated(ErrorKind::TruncatedHeader, src, "stream ends inside the 8-byte magic");
  }
  if (std::memcmp(magic.data(), kMagicV1, sizeof kMagicV1) == 0) {
    return read_image_v1(src);
  }
  if (std::memcmp(magic.data(), kMagicV2, sizeof kMagicV2) == 0) {
    return read_image_v2(src, magic);
  }
  return Error{ErrorKind::BadMagic, "not a TDCLZW1/TDCLZW2 image"};
}

CompressedImage read_image(std::istream& in) {
  return try_read_image(in).value_or_throw();
}

void write_image_file(const std::string& path, const EncodeResult& encoded,
                      const ContainerOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) Error{ErrorKind::IoError, "write_image_file: cannot open " + path}.raise();
  write_image(out, encoded, options);
}

Result<CompressedImage> try_read_image_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Error{ErrorKind::IoError, "read_image_file: cannot open " + path};
  return try_read_image(in);
}

CompressedImage read_image_file(const std::string& path) {
  return try_read_image_file(path).value_or_throw();
}

}  // namespace tdc::lzw
