#include "lzw/stream_io.h"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace tdc::lzw {

namespace {

constexpr char kMagic[8] = {'T', 'D', 'C', 'L', 'Z', 'W', '1', '\0'};

void put_u32(std::ostream& out, std::uint32_t v) {
  std::array<char, 4> b;
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b.data(), 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  std::array<char, 8> b;
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.write(b.data(), 8);
}

std::uint32_t get_u32(std::istream& in) {
  std::array<unsigned char, 4> b;
  in.read(reinterpret_cast<char*>(b.data()), 4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  std::array<unsigned char, 8> b;
  in.read(reinterpret_cast<char*>(b.data()), 8);
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

}  // namespace

void write_image(std::ostream& out, const EncodeResult& encoded) {
  out.write(kMagic, sizeof kMagic);
  put_u32(out, encoded.config.dict_size);
  put_u32(out, encoded.config.char_bits);
  put_u32(out, encoded.config.entry_bits);
  put_u32(out, encoded.config.variable_width ? 1u : 0u);
  put_u64(out, encoded.original_bits);
  put_u64(out, encoded.codes.size());
  put_u64(out, encoded.stream.bit_count());
  const auto& bytes = encoded.stream.bytes();
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("write_image: stream error");
}

CompressedImage read_image(std::istream& in) {
  char magic[sizeof kMagic];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("read_image: bad magic (not a TDCLZW1 file)");
  }
  CompressedImage image;
  image.config.dict_size = get_u32(in);
  image.config.char_bits = get_u32(in);
  image.config.entry_bits = get_u32(in);
  image.config.variable_width = get_u32(in) != 0;
  image.original_bits = get_u64(in);
  image.code_count = get_u64(in);
  const std::uint64_t payload_bits = get_u64(in);
  if (!in) throw std::runtime_error("read_image: truncated header");
  image.config.validate();

  const std::uint64_t bytes = (payload_bits + 7) / 8;
  std::vector<char> buf(bytes);
  in.read(buf.data(), static_cast<std::streamsize>(bytes));
  if (!in) throw std::runtime_error("read_image: truncated payload");
  for (std::uint64_t i = 0; i < payload_bits; ++i) {
    image.stream.write_bit((static_cast<unsigned char>(buf[i / 8]) >> (7 - i % 8)) & 1);
  }
  return image;
}

void write_image_file(const std::string& path, const EncodeResult& encoded) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_image_file: cannot open " + path);
  write_image(out, encoded);
}

CompressedImage read_image_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_image_file: cannot open " + path);
  return read_image(in);
}

}  // namespace tdc::lzw
