#include "lzw/encoder.h"

#include "core/contracts.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

#include "bits/rng.h"
#include "obs/trace.h"

namespace tdc::lzw {

namespace {

/// Applies a pre-fill mode, turning the ternary input into a fully
/// specified vector. Precondition: mode != Dynamic (the dynamic path reads
/// the caller's vector in place; see encode()).
bits::TritVector prefill(const bits::TritVector& input, XAssignMode mode,
                         std::uint64_t rng_seed) {
  switch (mode) {
    case XAssignMode::Dynamic:
      return input;
    case XAssignMode::ZeroFill:
      return input.filled(bits::Trit::Zero);
    case XAssignMode::OneFill:
      return input.filled(bits::Trit::One);
    case XAssignMode::RepeatFill:
      return input.filled_repeat_last();
    case XAssignMode::RandomFill: {
      bits::Rng rng(rng_seed);
      return input.filled_random(rng);
    }
  }
  return input;
}

/// Builds the per-stream emission histograms after the loop: match lengths
/// are counted from the already-recorded code_lengths (one array increment
/// per code, then at most 64 O(1) add_repeated folds), code widths from the
/// small per-width count array the emit path maintained. Equivalent to
/// recording each sample inline — the accumulate operations commute — but
/// keeps the full histogram update off the hot emit path (micro_codec pins
/// the telemetry overhead under 2%).
void fold_emit_histograms(EncodeResult& result,
                          const std::array<std::uint64_t, 33>& width_counts) {
  std::array<std::uint64_t, 64> len_counts{};
  for (const std::uint32_t len : result.code_lengths) {
    if (len < len_counts.size()) {
      ++len_counts[len];
    } else {
      result.telemetry.match_chars.record(len);  // exotic config, cold
    }
  }
  for (std::size_t len = 0; len < len_counts.size(); ++len) {
    result.telemetry.match_chars.record_repeated(len, len_counts[len]);
  }
  for (std::size_t w = 0; w < width_counts.size(); ++w) {
    result.telemetry.code_width_bits.record_repeated(w, width_counts[w]);
  }
}

}  // namespace

std::uint32_t Encoder::pick_child(const Dictionary& dict, std::uint32_t buffer,
                                  std::uint64_t value, std::uint64_t care,
                                  const bits::CharCursor& cursor,
                                  std::uint64_t char_index,
                                  std::uint64_t input_chars) const {
  // How many of the next input characters `code`'s subtree can keep
  // matching (greedy, first compatible grandchild) — the Lookahead score.
  const auto lookahead_score = [&](std::uint32_t code) {
    constexpr int kDepth = 2;
    int score = 0;
    std::uint32_t cur = code;
    for (int d = 1; d <= kDepth && char_index + d < input_chars; ++d) {
      const auto [nv, nc] = cursor.at(char_index + d);
      std::uint32_t next = kNoCode;
      for (const auto& [ch, child] : dict.children(cur)) {
        if (((static_cast<std::uint64_t>(ch) ^ nv) & nc) == 0) {
          next = child;
          break;
        }
      }
      if (next == kNoCode) break;
      ++score;
      cur = next;
    }
    return score;
  };

  std::uint32_t best = kNoCode;
  std::uint32_t best_ch = 0;
  std::size_t best_children = 0;
  int best_score = -1;
  for (const auto& [ch, child] : dict.children(buffer)) {
    if (((static_cast<std::uint64_t>(ch) ^ value) & care) != 0) continue;
    switch (tiebreak_) {
      case Tiebreak::First:
        return child;  // insertion order: first compatible wins
      case Tiebreak::LowestChar:
        // Track the winning candidate's own character explicitly; ties
        // resolve by the character scanned, never a stale lookup.
        if (best == kNoCode || ch < best_ch) {
          best = child;
          best_ch = ch;
        }
        break;
      case Tiebreak::MostRecent:
        if (best == kNoCode || child > best) best = child;
        break;
      case Tiebreak::MostChildren: {
        // O(1): the dictionary maintains the count at add time.
        const std::size_t n = dict.child_count(child);
        if (best == kNoCode || n > best_children) {
          best = child;
          best_children = n;
        }
        break;
      }
      case Tiebreak::Lookahead: {
        const int score = lookahead_score(child);
        if (score > best_score) {
          best = child;
          best_score = score;
        }
        break;
      }
    }
  }
  return best;
}

EncodeResult Encoder::encode(const bits::TritVector& raw_input, XAssignMode mode,
                             std::uint64_t rng_seed,
                             const StepObserver& observer) const {
  obs::TraceSpan span("lzw.encode");
  // Dynamic mode — the paper's method and the hot configuration — reads the
  // caller's vector in place; only the pre-fill strawmen materialize a
  // resolved copy.
  bits::TritVector filled;
  const bits::TritVector* input = &raw_input;
  if (mode != XAssignMode::Dynamic) {
    filled = prefill(raw_input, mode, rng_seed);
    input = &filled;
  }
  EncodeResult result = strategy_ == MatchStrategy::Indexed
                            ? encode_indexed(*input, observer)
                            : encode_legacy(*input, observer);
  if (mode != XAssignMode::Dynamic) {
    // A pre-fill mode resolved every X bit before the loop saw the stream.
    result.telemetry.x_bits_prefilled = raw_input.x_count();
  }
  // O(1) exit contracts, outside every loop (§10 discipline): a code never
  // expands from fewer characters than it emits, and with fixed-width
  // packing the stream is exactly codes * C_E bits — the paper's central
  // bit-accounting relation.
  TDC_ENSURE(result.codes.size() <= result.input_chars,
             "encode emitted more codes than input characters");
  TDC_ENSURE(config_.variable_width ||
                 result.stream.bit_count() ==
                     result.codes.size() * config_.code_bits(),
             "fixed-width stream must hold exactly codes * C_E bits");
  span.arg("input_bits", result.original_bits);
  span.arg("codes", static_cast<std::uint64_t>(result.codes.size()));
  return result;
}

EncodeResult Encoder::encode_indexed(const bits::TritVector& input,
                                     const StepObserver& observer) const {
  const std::uint32_t cc = config_.char_bits;

  EncodeResult result;
  result.config = config_;
  result.original_bits = input.size();
  result.input_chars = (input.size() + cc - 1) / cc;
  // Worst case one code per character (no compression): size once so the
  // emit path never reallocates.
  result.codes.reserve(result.input_chars);
  result.code_lengths.reserve(result.input_chars);

  Dictionary dict(config_);
  const std::uint32_t initial_codes = dict.size();
  const bool initially_full = dict.full();
  bits::CharCursor cursor(input, cc);
  const std::uint64_t full_care = cc >= 64 ? ~0ULL : (1ULL << cc) - 1;
  const std::uint32_t fixed_width = config_.code_bits();

  // Variable-width basis: the decoder's dictionary lags the encoder's by
  // exactly one insertion when it reads a code (it learns the entry for
  // emission k only while processing emission k+1), so each code must be
  // sized by the dictionary state *before* the encoder's latest add —
  // the classic LZW width-change timing.
  EncoderTelemetry& tel = result.telemetry;
  // Telemetry discipline for this loop: anything derivable from loop
  // invariants is reconstructed after the loop (probes = chars - 1,
  // extensions = chars - codes, x_input = x_count + tail padding), and the
  // X-bit split is counted where a character's X bits are *zeroed* — the
  // cold init/emit branches — with the matched total derived as
  // x_input - x_zeroed, because every character is consumed by exactly one
  // branch. The match branch, the hottest code in the repo, carries zero
  // added work. The only live counter on a hot path is n_probes_scan, a
  // register increment folded into the scan arm whose pick_child call
  // dwarfs it (micro_codec pins the total overhead under 2%).
  std::uint64_t n_probes_scan = 0, n_x_zeroed = 0;
  // Per-emit histogram samples are counted into this plain array (one
  // increment each — code widths never exceed 32 bits) and folded into the
  // code_width_bits histogram after the loop with add_repeated(); a full
  // histogram add per emission is measurable in micro_codec. match_chars is
  // rebuilt from result.code_lengths the same way.
  std::array<std::uint64_t, 33> width_counts{};
  std::uint32_t width_basis = dict.size();
  auto emit = [&](std::uint32_t code) {
    result.codes.push_back(code);
    result.code_lengths.push_back(dict.length(code));
    // Clamp at C_E: once the dictionary is full, codes stay below N even
    // though bit_width(N) would be one wider.
    const std::uint32_t width =
        config_.variable_width
            ? std::min(static_cast<std::uint32_t>(std::bit_width(width_basis)),
                       fixed_width)
            : fixed_width;
    result.stream.write(code, width);
    ++width_counts[width];
    result.longest_match_bits =
        std::max(result.longest_match_bits, dict.length_bits(code));
  };

  // The cursor is software-pipelined one character ahead: `cur` always holds
  // character i while the cursor has already decoded i+1 into `ahead`. That
  // lets the loop prefetch the *next* iteration's hash-probe home slot right
  // after `buffer` settles, so the probe's likely cache miss overlaps the
  // current character's emit/add work instead of stalling the next probe.
  const bool observing = static_cast<bool>(observer);
  std::uint32_t buffer = kNoCode;
  bits::CharCursor::Char cur{};
  if (result.input_chars > 0) cur = cursor.next();
  for (std::uint64_t i = 0; i < result.input_chars; ++i) {
    const std::uint64_t value = cur.value;
    const std::uint64_t care = cur.care;
    const bool has_ahead = i + 1 < result.input_chars;
    if (has_ahead) cur = cursor.next();
    const std::uint32_t buffer_before = buffer;
    std::uint32_t emitted = kNoCode;
    std::uint32_t new_entry = kNoCode;

    if (buffer == kNoCode) {
      // First character of the message: bind its X bits (to 0) and start
      // the match at the corresponding literal root.
      n_x_zeroed += static_cast<std::uint64_t>(std::popcount(full_care & ~care));
      buffer = static_cast<std::uint32_t>(value & care);
    } else if (const std::uint32_t child =
                   care == full_care
                       // Fully specified character: exactly one child can be
                       // compatible, so every Tiebreak agrees and the O(1)
                       // hash probe replaces the list scan. Only the scan
                       // path counts probes — the fast total is derived.
                       ? dict.child(buffer, static_cast<std::uint32_t>(value))
                       : (++n_probes_scan,
                          pick_child(dict, buffer, value, care, cursor, i,
                                     result.input_chars));
               child != kNoCode) {
      // The (Buffer, Input) pair exists (for some legal X binding): keep
      // matching. The X bits are hereby bound to the child's character.
      buffer = child;
    } else {
      // No compatible child: emit Buffer, create the (Buffer, Input) entry
      // with a concrete binding of the X bits, and restart the match there.
      emit(buffer);
      emitted = buffer;
      n_x_zeroed += static_cast<std::uint64_t>(std::popcount(full_care & ~care));
      const auto ch = static_cast<std::uint32_t>(value & care);  // X -> 0
      width_basis = dict.size();
      new_entry = dict.add(buffer, ch);
      buffer = ch;
    }
    if (has_ahead) {
      dict.prefetch_child(buffer,
                          static_cast<std::uint32_t>(cur.value & cur.care));
    }
    if (observing) {
      observer(EncoderStep{.char_index = i, .char_value = value,
                           .char_care = care, .buffer_before = buffer_before,
                           .buffer_after = buffer, .emitted = emitted,
                           .new_entry = new_entry});
    }
  }
  if (buffer != kNoCode) {
    emit(buffer);
    if (observer) {
      observer(EncoderStep{.char_index = result.input_chars,
                           .buffer_before = buffer, .buffer_after = kNoCode,
                           .emitted = buffer});
    }
  }
  // Reconstruct the derivable counters from loop invariants: every character
  // after the first probes exactly once, a probe either extends or ends a
  // match (the final emit is outside the loop), every X bit — including
  // the X padding of a partial tail character — is bound exactly once
  // (either to a matched child on the hot branch or to 0 on a cold branch),
  // the dictionary grows by one per successful add and never shrinks, and
  // "full" is entered at most once and never left.
  const std::uint64_t probes =
      result.input_chars > 0 ? result.input_chars - 1 : 0;
  tel.probes_scan = n_probes_scan;
  tel.probes_fast = probes - n_probes_scan;
  tel.match_extensions = result.input_chars - result.codes.size();
  tel.x_bits_input =
      input.x_count() + (result.input_chars * cc - input.size());
  tel.x_bits_zeroed = n_x_zeroed;
  tel.x_bits_matched = tel.x_bits_input - n_x_zeroed;
  tel.entries_added = dict.size() - initial_codes;
  tel.dict_full_events = !initially_full && dict.full() ? 1 : 0;
  fold_emit_histograms(result, width_counts);

  result.dict_codes_used = dict.size();
  result.longest_entry_bits = dict.longest_entry_bits();
  return result;
}

EncodeResult Encoder::encode_legacy(const bits::TritVector& input,
                                    const StepObserver& observer) const {
  // Faithful replica of the pre-index encoder: per-character
  // word()/care_word() re-slice, unconditional child-list scan, per-bit
  // stream emission, no container pre-sizing. Kept byte-for-byte equivalent
  // in output (the lzw_paths property test enforces it) so it can serve as
  // the reference implementation and as the micro_codec baseline the
  // Indexed path's speedup is measured against.
  const std::uint32_t cc = config_.char_bits;

  EncodeResult result;
  result.config = config_;
  result.original_bits = input.size();
  result.input_chars = (input.size() + cc - 1) / cc;

  Dictionary dict(config_);
  const std::uint32_t initial_codes = dict.size();
  const bool initially_full = dict.full();
  bits::CharCursor cursor(input, cc);  // feeds only the Lookahead probe
  const std::uint64_t full_care = cc >= 64 ? ~0ULL : (1ULL << cc) - 1;

  // Same always-on telemetry as the indexed path; every probe counts as a
  // scan here because the legacy strategy never consults the hash index.
  EncoderTelemetry& tel = result.telemetry;
  // Same derive-after-the-loop discipline as the indexed path (see the
  // comment there): the legacy loop is the micro_codec baseline, so its
  // telemetry must not cost more than the indexed path's either. Every
  // legacy probe is a scan, so not even a probe counter is needed — the
  // X-bit split is counted in the cold init/emit branches alone.
  std::uint64_t n_x_zeroed = 0;
  std::array<std::uint64_t, 33> width_counts{};
  std::uint32_t width_basis = dict.size();
  auto emit = [&](std::uint32_t code) {
    result.codes.push_back(code);
    result.code_lengths.push_back(dict.length(code));
    const std::uint32_t width =
        config_.variable_width
            ? std::min(static_cast<std::uint32_t>(std::bit_width(width_basis)),
                       config_.code_bits())
            : config_.code_bits();
    // The pre-PR BitWriter wrote codes one bit at a time; keep that cost
    // here so the baseline measurement stays honest.
    for (std::uint32_t b = width; b-- > 0;) {
      result.stream.write_bit(((code >> b) & 1u) != 0);
    }
    ++width_counts[width];
    result.longest_match_bits =
        std::max(result.longest_match_bits, dict.length_bits(code));
  };

  std::uint32_t buffer = kNoCode;
  for (std::uint64_t i = 0; i < result.input_chars; ++i) {
    const std::uint64_t pos = i * cc;
    const std::uint64_t value = input.word(pos, cc);
    const std::uint64_t care = input.care_word(pos, cc);
    EncoderStep step{.char_index = i, .char_value = value, .char_care = care,
                     .buffer_before = buffer};

    if (buffer == kNoCode) {
      n_x_zeroed += static_cast<std::uint64_t>(std::popcount(full_care & ~care));
      buffer = static_cast<std::uint32_t>(value & care);
    } else if (const std::uint32_t child = pick_child(
                   dict, buffer, value, care, cursor, i, result.input_chars);
               child != kNoCode) {
      buffer = child;
    } else {
      emit(buffer);
      step.emitted = buffer;
      n_x_zeroed += static_cast<std::uint64_t>(std::popcount(full_care & ~care));
      const auto ch = static_cast<std::uint32_t>(value & care);  // X -> 0
      width_basis = dict.size();
      step.new_entry = dict.add(buffer, ch);
      buffer = ch;
    }
    if (observer) {
      step.buffer_after = buffer;
      observer(step);
    }
  }
  if (buffer != kNoCode) {
    emit(buffer);
    if (observer) {
      observer(EncoderStep{.char_index = result.input_chars,
                           .buffer_before = buffer, .buffer_after = kNoCode,
                           .emitted = buffer});
    }
  }
  // Derived exactly as in the indexed path; the legacy strategy never
  // consults the hash index, so every probe is a scan.
  tel.probes_scan = result.input_chars > 0 ? result.input_chars - 1 : 0;
  tel.match_extensions = result.input_chars - result.codes.size();
  tel.x_bits_input =
      input.x_count() + (result.input_chars * cc - input.size());
  tel.x_bits_zeroed = n_x_zeroed;
  tel.x_bits_matched = tel.x_bits_input - n_x_zeroed;
  tel.entries_added = dict.size() - initial_codes;
  tel.dict_full_events = !initially_full && dict.full() ? 1 : 0;
  fold_emit_histograms(result, width_counts);

  result.dict_codes_used = dict.size();
  result.longest_entry_bits = dict.longest_entry_bits();
  return result;
}

}  // namespace tdc::lzw
