#include "lzw/encoder.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "bits/rng.h"

namespace tdc::lzw {

namespace {

/// Applies a pre-fill mode, turning the ternary input into a fully
/// specified vector (identity for Dynamic).
bits::TritVector prefill(const bits::TritVector& input, XAssignMode mode,
                         std::uint64_t rng_seed) {
  switch (mode) {
    case XAssignMode::Dynamic:
      return input;
    case XAssignMode::ZeroFill:
      return input.filled(bits::Trit::Zero);
    case XAssignMode::OneFill:
      return input.filled(bits::Trit::One);
    case XAssignMode::RepeatFill:
      return input.filled_repeat_last();
    case XAssignMode::RandomFill: {
      bits::Rng rng(rng_seed);
      return input.filled_random(rng);
    }
  }
  return input;
}

}  // namespace

std::uint32_t Encoder::pick_child(const Dictionary& dict, std::uint32_t buffer,
                                  std::uint64_t value, std::uint64_t care,
                                  const bits::CharCursor& cursor,
                                  std::uint64_t char_index,
                                  std::uint64_t input_chars) const {
  // How many of the next input characters `code`'s subtree can keep
  // matching (greedy, first compatible grandchild) — the Lookahead score.
  const auto lookahead_score = [&](std::uint32_t code) {
    constexpr int kDepth = 2;
    int score = 0;
    std::uint32_t cur = code;
    for (int d = 1; d <= kDepth && char_index + d < input_chars; ++d) {
      const auto [nv, nc] = cursor.at(char_index + d);
      std::uint32_t next = kNoCode;
      for (const auto& [ch, child] : dict.children(cur)) {
        if (((static_cast<std::uint64_t>(ch) ^ nv) & nc) == 0) {
          next = child;
          break;
        }
      }
      if (next == kNoCode) break;
      ++score;
      cur = next;
    }
    return score;
  };

  std::uint32_t best = kNoCode;
  std::uint32_t best_ch = 0;
  std::size_t best_children = 0;
  int best_score = -1;
  for (const auto& [ch, child] : dict.children(buffer)) {
    if (((static_cast<std::uint64_t>(ch) ^ value) & care) != 0) continue;
    switch (tiebreak_) {
      case Tiebreak::First:
        return child;  // insertion order: first compatible wins
      case Tiebreak::LowestChar:
        // Track the winning candidate's own character explicitly; ties
        // resolve by the character scanned, never a stale lookup.
        if (best == kNoCode || ch < best_ch) {
          best = child;
          best_ch = ch;
        }
        break;
      case Tiebreak::MostRecent:
        if (best == kNoCode || child > best) best = child;
        break;
      case Tiebreak::MostChildren: {
        const std::size_t n = dict.children(child).size();
        if (best == kNoCode || n > best_children) {
          best = child;
          best_children = n;
        }
        break;
      }
      case Tiebreak::Lookahead: {
        const int score = lookahead_score(child);
        if (score > best_score) {
          best = child;
          best_score = score;
        }
        break;
      }
    }
  }
  return best;
}

EncodeResult Encoder::encode(const bits::TritVector& raw_input, XAssignMode mode,
                             std::uint64_t rng_seed,
                             const StepObserver& observer) const {
  const bits::TritVector input = prefill(raw_input, mode, rng_seed);
  return strategy_ == MatchStrategy::Indexed ? encode_indexed(input, observer)
                                             : encode_legacy(input, observer);
}

EncodeResult Encoder::encode_indexed(const bits::TritVector& input,
                                     const StepObserver& observer) const {
  const std::uint32_t cc = config_.char_bits;

  EncodeResult result;
  result.config = config_;
  result.original_bits = input.size();
  result.input_chars = (input.size() + cc - 1) / cc;
  // Worst case one code per character (no compression): size once so the
  // emit path never reallocates.
  result.codes.reserve(result.input_chars);
  result.code_lengths.reserve(result.input_chars);

  Dictionary dict(config_);
  bits::CharCursor cursor(input, cc);
  const std::uint64_t full_care = cc >= 64 ? ~0ULL : (1ULL << cc) - 1;
  const std::uint32_t fixed_width = config_.code_bits();

  // Variable-width basis: the decoder's dictionary lags the encoder's by
  // exactly one insertion when it reads a code (it learns the entry for
  // emission k only while processing emission k+1), so each code must be
  // sized by the dictionary state *before* the encoder's latest add —
  // the classic LZW width-change timing.
  std::uint32_t width_basis = dict.size();
  auto emit = [&](std::uint32_t code) {
    result.codes.push_back(code);
    result.code_lengths.push_back(dict.length(code));
    // Clamp at C_E: once the dictionary is full, codes stay below N even
    // though bit_width(N) would be one wider.
    const std::uint32_t width =
        config_.variable_width
            ? std::min(static_cast<std::uint32_t>(std::bit_width(width_basis)),
                       fixed_width)
            : fixed_width;
    result.stream.write(code, width);
    result.longest_match_bits =
        std::max(result.longest_match_bits, dict.length_bits(code));
  };

  std::uint32_t buffer = kNoCode;
  for (std::uint64_t i = 0; i < result.input_chars; ++i) {
    const auto [value, care] = cursor.next();
    EncoderStep step{.char_index = i, .char_value = value, .char_care = care,
                     .buffer_before = buffer};

    if (buffer == kNoCode) {
      // First character of the message: bind its X bits (to 0) and start
      // the match at the corresponding literal root.
      buffer = static_cast<std::uint32_t>(value & care);
    } else if (const std::uint32_t child =
                   care == full_care
                       // Fully specified character: exactly one child can be
                       // compatible, so every Tiebreak agrees and the O(1)
                       // hash probe replaces the list scan.
                       ? dict.child(buffer, static_cast<std::uint32_t>(value))
                       : pick_child(dict, buffer, value, care, cursor, i,
                                    result.input_chars);
               child != kNoCode) {
      // The (Buffer, Input) pair exists (for some legal X binding): keep
      // matching. The X bits are hereby bound to the child's character.
      buffer = child;
    } else {
      // No compatible child: emit Buffer, create the (Buffer, Input) entry
      // with a concrete binding of the X bits, and restart the match there.
      emit(buffer);
      step.emitted = buffer;
      const auto ch = static_cast<std::uint32_t>(value & care);  // X -> 0
      width_basis = dict.size();
      step.new_entry = dict.add(buffer, ch);
      buffer = ch;
    }
    if (observer) {
      step.buffer_after = buffer;
      observer(step);
    }
  }
  if (buffer != kNoCode) {
    emit(buffer);
    if (observer) {
      observer(EncoderStep{.char_index = result.input_chars,
                           .buffer_before = buffer, .buffer_after = kNoCode,
                           .emitted = buffer});
    }
  }

  result.dict_codes_used = dict.size();
  result.longest_entry_bits = dict.longest_entry_bits();
  return result;
}

EncodeResult Encoder::encode_legacy(const bits::TritVector& input,
                                    const StepObserver& observer) const {
  // Faithful replica of the pre-index encoder: per-character
  // word()/care_word() re-slice, unconditional child-list scan, per-bit
  // stream emission, no container pre-sizing. Kept byte-for-byte equivalent
  // in output (the lzw_paths property test enforces it) so it can serve as
  // the reference implementation and as the micro_codec baseline the
  // Indexed path's speedup is measured against.
  const std::uint32_t cc = config_.char_bits;

  EncodeResult result;
  result.config = config_;
  result.original_bits = input.size();
  result.input_chars = (input.size() + cc - 1) / cc;

  Dictionary dict(config_);
  bits::CharCursor cursor(input, cc);  // feeds only the Lookahead probe

  std::uint32_t width_basis = dict.size();
  auto emit = [&](std::uint32_t code) {
    result.codes.push_back(code);
    result.code_lengths.push_back(dict.length(code));
    const std::uint32_t width =
        config_.variable_width
            ? std::min(static_cast<std::uint32_t>(std::bit_width(width_basis)),
                       config_.code_bits())
            : config_.code_bits();
    // The pre-PR BitWriter wrote codes one bit at a time; keep that cost
    // here so the baseline measurement stays honest.
    for (std::uint32_t b = width; b-- > 0;) {
      result.stream.write_bit(((code >> b) & 1u) != 0);
    }
    result.longest_match_bits =
        std::max(result.longest_match_bits, dict.length_bits(code));
  };

  std::uint32_t buffer = kNoCode;
  for (std::uint64_t i = 0; i < result.input_chars; ++i) {
    const std::uint64_t pos = i * cc;
    const std::uint64_t value = input.word(pos, cc);
    const std::uint64_t care = input.care_word(pos, cc);
    EncoderStep step{.char_index = i, .char_value = value, .char_care = care,
                     .buffer_before = buffer};

    if (buffer == kNoCode) {
      buffer = static_cast<std::uint32_t>(value & care);
    } else if (const std::uint32_t child = pick_child(
                   dict, buffer, value, care, cursor, i, result.input_chars);
               child != kNoCode) {
      buffer = child;
    } else {
      emit(buffer);
      step.emitted = buffer;
      const auto ch = static_cast<std::uint32_t>(value & care);  // X -> 0
      width_basis = dict.size();
      step.new_entry = dict.add(buffer, ch);
      buffer = ch;
    }
    if (observer) {
      step.buffer_after = buffer;
      observer(step);
    }
  }
  if (buffer != kNoCode) {
    emit(buffer);
    if (observer) {
      observer(EncoderStep{.char_index = result.input_chars,
                           .buffer_before = buffer, .buffer_after = kNoCode,
                           .emitted = buffer});
    }
  }

  result.dict_codes_used = dict.size();
  result.longest_entry_bits = dict.longest_entry_bits();
  return result;
}

}  // namespace tdc::lzw
