#include "lzw/decoder.h"

#include <algorithm>
#include <bit>

#include "obs/trace.h"

namespace tdc::lzw {

Result<DecodeResult> Decoder::try_decode(const std::vector<std::uint32_t>& codes,
                                         std::uint64_t original_bits) const {
  std::size_t i = 0;
  return decode_impl(
      [&](std::uint32_t) -> std::optional<std::uint32_t> { return codes[i++]; },
      [] { return std::int64_t{-1}; }, codes.size(), original_bits);
}

Result<DecodeResult> Decoder::decode_impl(
    const std::function<std::optional<std::uint32_t>(std::uint32_t)>& next_code,
    const std::function<std::int64_t()>& tell, std::size_t code_count,
    std::uint64_t original_bits) const {
  obs::TraceSpan span("lzw.decode");
  Dictionary dict(config_);
  DecodeResult result;
  DecoderTelemetry& tel = result.telemetry;

  std::uint32_t prev = kNoCode;
  for (std::size_t idx = 0; idx < code_count; ++idx) {
    const std::uint32_t width =
        config_.variable_width
            ? std::min(static_cast<std::uint32_t>(std::bit_width(dict.size())),
                       config_.code_bits())
            : config_.code_bits();
    const std::int64_t code_bit_offset = tell();
    const std::optional<std::uint32_t> fetched = next_code(width);
    if (!fetched) {
      Error err{ErrorKind::CodeStreamTruncated,
                "payload ends inside code " + std::to_string(idx) + " of " +
                    std::to_string(code_count) + " (" + std::to_string(width) +
                    " bits needed)"};
      err.code_index = static_cast<std::int64_t>(idx);
      err.bit_offset = code_bit_offset;
      return err;
    }
    const std::uint32_t code = *fetched;
    ++tel.codes_consumed;
    // Expansions are written as runs directly into the output tail
    // (expand_into: one backward parent-chain walk into preallocated room)
    // instead of materializing a per-code vector and copying it — the
    // decoder's hot path allocates only when the output grows.
    std::uint32_t entry_len = 0;
    std::uint32_t entry_first = 0;
    if (dict.defined(code)) {
      entry_len = dict.length(code);
      entry_first = dict.first_char(code);
      const std::size_t old = result.chars.size();
      result.chars.resize(old + entry_len);
      dict.expand_into(code, result.chars.data() + old);
    } else if (prev != kNoCode && code == dict.next_code() && dict.extendable(prev) &&
               dict.child(prev, dict.first_char(prev)) == kNoCode) {
      // KwKwK (paper Fig. 4f): the code references the entry that is being
      // created right now — its expansion is Buffer plus Buffer's first char.
      // A real encoder only emits this while (prev, first_char) is still
      // undefined; if that child exists the code is corrupt, and treating it
      // as KwKwK would leave `code` undefined and poison `prev`.
      entry_len = dict.length(prev) + 1;
      entry_first = dict.first_char(prev);
      const std::size_t old = result.chars.size();
      result.chars.resize(old + entry_len);
      dict.expand_into(prev, result.chars.data() + old);
      result.chars.back() = entry_first;
      ++tel.kwkwk_codes;
    } else {
      Error err{ErrorKind::UndefinedCode,
                "code value " + std::to_string(code) + " undefined (dictionary holds " +
                    std::to_string(dict.size()) + " codes, not the KwKwK case)"};
      err.code_index = static_cast<std::int64_t>(idx);
      err.bit_offset = code_bit_offset;
      return err;
    }

    if (prev != kNoCode) {
      // Mirror of the encoder's dictionary insertion; Dictionary::add
      // enforces the identical freeze (capacity) and C_MDATA (width) rules.
      if (dict.child(prev, entry_first) == kNoCode) {
        if (dict.add(prev, entry_first) != kNoCode) ++tel.entries_added;
      }
    }

    tel.expansion_chars.record(entry_len);
    prev = code;
  }

  const std::uint32_t cc = config_.char_bits;
  const std::uint64_t decoded_bits =
      static_cast<std::uint64_t>(result.chars.size()) * cc;
  if (decoded_bits < original_bits) {
    Error err{ErrorKind::StreamTooShort,
              "decoded " + std::to_string(decoded_bits) + " of " +
                  std::to_string(original_bits) + " scan bits from " +
                  std::to_string(code_count) + " codes"};
    err.code_index = static_cast<std::int64_t>(code_count);
    err.bit_offset = tell();
    return err;
  }
  // Deposit whole characters with one masked word store per plane
  // (set_word), truncating the final character to the original bit count —
  // the word-parallel replacement for the per-bit push_back loop.
  result.bits = bits::TritVector(original_bits, bits::Trit::Zero);
  for (std::uint64_t pos = 0, i = 0; pos < original_bits; pos += cc, ++i) {
    const std::uint32_t ch = result.chars[i];
    const auto len = static_cast<unsigned>(
        std::min<std::uint64_t>(cc, original_bits - pos));
    result.bits.set_word(pos, (ch >> (cc - len)) & bits::low_mask(len), len);
  }

  result.dict_codes_used = dict.size();
  span.arg("codes", tel.codes_consumed);
  span.arg("output_bits", static_cast<std::uint64_t>(result.bits.size()));
  return result;
}

Result<DecodeResult> Decoder::try_decode_stream(bits::BitReader& reader,
                                                std::size_t code_count,
                                                std::uint64_t original_bits) const {
  return decode_impl(
      [&reader](std::uint32_t width) -> std::optional<std::uint32_t> {
        if (reader.remaining() < width) return std::nullopt;
        return static_cast<std::uint32_t>(reader.read(width));
      },
      [&reader] { return static_cast<std::int64_t>(reader.position()); },
      code_count, original_bits);
}

}  // namespace tdc::lzw
