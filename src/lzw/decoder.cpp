#include "lzw/decoder.h"

#include <algorithm>
#include <bit>

#include "obs/trace.h"

namespace tdc::lzw {

Result<DecodeResult> Decoder::try_decode(const std::vector<std::uint32_t>& codes,
                                         std::uint64_t original_bits) const {
  std::size_t i = 0;
  return decode_impl(
      [&](std::uint32_t) -> std::optional<std::uint32_t> { return codes[i++]; },
      [] { return std::int64_t{-1}; }, codes.size(), original_bits);
}

Result<DecodeResult> Decoder::decode_impl(
    const std::function<std::optional<std::uint32_t>(std::uint32_t)>& next_code,
    const std::function<std::int64_t()>& tell, std::size_t code_count,
    std::uint64_t original_bits) const {
  obs::TraceSpan span("lzw.decode");
  Dictionary dict(config_);
  DecodeResult result;
  DecoderTelemetry& tel = result.telemetry;

  std::uint32_t prev = kNoCode;
  for (std::size_t idx = 0; idx < code_count; ++idx) {
    const std::uint32_t width =
        config_.variable_width
            ? std::min(static_cast<std::uint32_t>(std::bit_width(dict.size())),
                       config_.code_bits())
            : config_.code_bits();
    const std::int64_t code_bit_offset = tell();
    const std::optional<std::uint32_t> fetched = next_code(width);
    if (!fetched) {
      Error err{ErrorKind::CodeStreamTruncated,
                "payload ends inside code " + std::to_string(idx) + " of " +
                    std::to_string(code_count) + " (" + std::to_string(width) +
                    " bits needed)"};
      err.code_index = static_cast<std::int64_t>(idx);
      err.bit_offset = code_bit_offset;
      return err;
    }
    const std::uint32_t code = *fetched;
    ++tel.codes_consumed;
    std::vector<std::uint32_t> entry;
    if (dict.defined(code)) {
      entry = dict.expand(code);
    } else if (prev != kNoCode && code == dict.next_code() && dict.extendable(prev) &&
               dict.child(prev, dict.first_char(prev)) == kNoCode) {
      // KwKwK (paper Fig. 4f): the code references the entry that is being
      // created right now — its expansion is Buffer plus Buffer's first char.
      // A real encoder only emits this while (prev, first_char) is still
      // undefined; if that child exists the code is corrupt, and treating it
      // as KwKwK would leave `code` undefined and poison `prev`.
      entry = dict.expand(prev);
      entry.push_back(dict.first_char(prev));
      ++tel.kwkwk_codes;
    } else {
      Error err{ErrorKind::UndefinedCode,
                "code value " + std::to_string(code) + " undefined (dictionary holds " +
                    std::to_string(dict.size()) + " codes, not the KwKwK case)"};
      err.code_index = static_cast<std::int64_t>(idx);
      err.bit_offset = code_bit_offset;
      return err;
    }

    if (prev != kNoCode) {
      // Mirror of the encoder's dictionary insertion; Dictionary::add
      // enforces the identical freeze (capacity) and C_MDATA (width) rules.
      if (dict.child(prev, entry.front()) == kNoCode) {
        if (dict.add(prev, entry.front()) != kNoCode) ++tel.entries_added;
      }
    }

    tel.expansion_chars.record(entry.size());
    result.chars.insert(result.chars.end(), entry.begin(), entry.end());
    prev = code;
  }

  for (const std::uint32_t ch : result.chars) {
    for (std::uint32_t b = config_.char_bits; b-- > 0;) {
      if (result.bits.size() == original_bits) break;
      result.bits.push_back(((ch >> b) & 1u) != 0 ? bits::Trit::One
                                                  : bits::Trit::Zero);
    }
  }
  if (result.bits.size() < original_bits) {
    Error err{ErrorKind::StreamTooShort,
              "decoded " + std::to_string(result.bits.size()) + " of " +
                  std::to_string(original_bits) + " scan bits from " +
                  std::to_string(code_count) + " codes"};
    err.code_index = static_cast<std::int64_t>(code_count);
    err.bit_offset = tell();
    return err;
  }

  result.dict_codes_used = dict.size();
  span.arg("codes", tel.codes_consumed);
  span.arg("output_bits", static_cast<std::uint64_t>(result.bits.size()));
  return result;
}

Result<DecodeResult> Decoder::try_decode_stream(bits::BitReader& reader,
                                                std::size_t code_count,
                                                std::uint64_t original_bits) const {
  return decode_impl(
      [&reader](std::uint32_t width) -> std::optional<std::uint32_t> {
        if (reader.remaining() < width) return std::nullopt;
        return static_cast<std::uint32_t>(reader.read(width));
      },
      [&reader] { return static_cast<std::int64_t>(reader.position()); },
      code_count, original_bits);
}

}  // namespace tdc::lzw
