#include "lzw/decoder.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace tdc::lzw {

DecodeResult Decoder::decode(const std::vector<std::uint32_t>& codes,
                             std::uint64_t original_bits) const {
  std::size_t i = 0;
  return decode_impl([&](std::uint32_t) { return codes[i++]; }, codes.size(),
                     original_bits);
}

DecodeResult Decoder::decode_impl(
    const std::function<std::uint32_t(std::uint32_t)>& next_code,
    std::size_t code_count, std::uint64_t original_bits) const {
  Dictionary dict(config_);
  DecodeResult result;

  std::uint32_t prev = kNoCode;
  for (std::size_t idx = 0; idx < code_count; ++idx) {
    const std::uint32_t width =
        config_.variable_width
            ? std::min(static_cast<std::uint32_t>(std::bit_width(dict.size())),
                       config_.code_bits())
            : config_.code_bits();
    const std::uint32_t code = next_code(width);
    std::vector<std::uint32_t> entry;
    if (dict.defined(code)) {
      entry = dict.expand(code);
    } else if (prev != kNoCode && code == dict.next_code() && dict.extendable(prev)) {
      // KwKwK (paper Fig. 4f): the code references the entry that is being
      // created right now — its expansion is Buffer plus Buffer's first char.
      entry = dict.expand(prev);
      entry.push_back(dict.first_char(prev));
    } else {
      throw std::invalid_argument("Decoder: undefined code in stream");
    }

    if (prev != kNoCode) {
      // Mirror of the encoder's dictionary insertion; Dictionary::add
      // enforces the identical freeze (capacity) and C_MDATA (width) rules.
      if (dict.child(prev, entry.front()) == kNoCode) {
        dict.add(prev, entry.front());
      }
    }

    result.chars.insert(result.chars.end(), entry.begin(), entry.end());
    prev = code;
  }

  for (const std::uint32_t ch : result.chars) {
    for (std::uint32_t b = config_.char_bits; b-- > 0;) {
      if (result.bits.size() == original_bits) break;
      result.bits.push_back(((ch >> b) & 1u) != 0 ? bits::Trit::One
                                                  : bits::Trit::Zero);
    }
  }
  if (result.bits.size() < original_bits) {
    throw std::invalid_argument("Decoder: stream shorter than original_bits");
  }

  result.dict_codes_used = dict.size();
  return result;
}

DecodeResult Decoder::decode_stream(bits::BitReader& reader, std::size_t code_count,
                                    std::uint64_t original_bits) const {
  return decode_impl(
      [&reader](std::uint32_t width) {
        return static_cast<std::uint32_t>(reader.read(width));
      },
      code_count, original_bits);
}

}  // namespace tdc::lzw
