#include "lzw/telemetry.h"

namespace tdc::lzw {

namespace {

std::string field(const char* name, std::uint64_t value, bool last = false) {
  return std::string("\"") + name + "\": " + std::to_string(value) +
         (last ? "" : ", ");
}

}  // namespace

std::string EncoderTelemetry::to_json() const {
  std::string json = "{";
  json += field("probes_fast", probes_fast);
  json += field("probes_scan", probes_scan);
  json += field("match_extensions", match_extensions);
  json += field("x_bits_input", x_bits_input);
  json += field("x_bits_matched", x_bits_matched);
  json += field("x_bits_zeroed", x_bits_zeroed);
  json += field("x_bits_prefilled", x_bits_prefilled);
  json += field("entries_added", entries_added);
  json += field("dict_full_events", dict_full_events);
  json += "\"match_chars\": " + obs::snapshot_summary_json(match_chars.snapshot()) +
          ", ";
  json += "\"code_width_bits\": " +
          obs::snapshot_summary_json(code_width_bits.snapshot());
  json += "}";
  return json;
}

std::string DecoderTelemetry::to_json() const {
  std::string json = "{";
  json += field("codes_consumed", codes_consumed);
  json += field("kwkwk_codes", kwkwk_codes);
  json += field("entries_added", entries_added);
  json += "\"expansion_chars\": " +
          obs::snapshot_summary_json(expansion_chars.snapshot());
  json += "}";
  return json;
}

}  // namespace tdc::lzw
