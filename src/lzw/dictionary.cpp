#include "lzw/dictionary.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "core/contracts.h"

namespace tdc::lzw {

Dictionary::Dictionary(const LzwConfig& config) : config_(config) {
  config_.validate();
  // All arenas sized once for the full dictionary: add() never allocates,
  // and every field of code c sits at index c of a flat array.
  sib_.reserve(config_.dict_size);
  meta_.reserve(config_.dict_size);
  tail_.assign(config_.dict_size, Tail{});
  // Hash index sized once for the full dictionary: power of two with load
  // factor <= 1/2 even at dictionary freeze, so probes stay short.
  const std::size_t slots =
      std::bit_ceil<std::size_t>(std::max<std::size_t>(16, 2 * config_.dict_size));
  index_.assign(slots, IndexSlot{});
  index_shift_ = 64 - static_cast<unsigned>(std::countr_zero(slots));
  // Literal codes: one root per possible uncompressed character.
  for (std::uint32_t c = 0; c < config_.literal_count(); ++c) {
    sib_.push_back(SibLink{.ch = c, .next = kNoCode});
    meta_.push_back(Meta{.parent = kNoCode, .root_ch = c, .length = 1,
                         .first_child = kNoCode});
  }
  next_code_ = config_.literal_count();
  longest_bits_ = config_.char_bits;
}

std::uint32_t Dictionary::first_char(std::uint32_t code) const {
  TDC_REQUIRE(defined(code), "first_char: undefined code");
  return meta_[code].root_ch;
}

std::vector<std::uint32_t> Dictionary::expand(std::uint32_t code) const {
  TDC_REQUIRE(defined(code), "expand: undefined code");
  std::vector<std::uint32_t> out(length(code));
  expand_into(code, out.data());
  return out;
}

void Dictionary::index_insert(std::uint32_t parent, std::uint32_t ch,
                              std::uint32_t child) {
  const std::uint64_t key = index_key(parent, ch);
  const std::size_t mask = index_.size() - 1;
  std::size_t slot = index_home(key);
  while (index_[slot].key != kEmptySlot) slot = (slot + 1) & mask;
  index_[slot] = IndexSlot{.key = key, .child = child};
}

std::uint32_t Dictionary::add(std::uint32_t parent, std::uint32_t ch) {
  assert(defined(parent));
  assert(ch < config_.literal_count());
  assert(child(parent, ch) == kNoCode);
  if (full() || !extendable(parent)) return kNoCode;
  const std::uint32_t code = next_code_++;
  sib_.push_back(SibLink{.ch = ch, .next = kNoCode});
  const Meta& pm = meta_[parent];
  const std::uint32_t new_length = pm.length + 1;
  meta_.push_back(Meta{.parent = parent, .root_ch = pm.root_ch,
                       .length = new_length, .first_child = kNoCode});
  // Link into the parent's child chain at the tail so children() preserves
  // insertion order (the First tie-break's contract).
  Tail& pt = tail_[parent];
  if (pt.last_child == kNoCode) {
    meta_[parent].first_child = code;
  } else {
    sib_[pt.last_child].next = code;
  }
  pt.last_child = code;
  ++pt.count;
  index_insert(parent, ch, code);
  longest_bits_ = std::max<std::uint64_t>(
      longest_bits_,
      static_cast<std::uint64_t>(new_length) * config_.char_bits);
  return code;
}

}  // namespace tdc::lzw
