#include "lzw/dictionary.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "core/contracts.h"

namespace tdc::lzw {

Dictionary::Dictionary(const LzwConfig& config) : config_(config) {
  config_.validate();
  nodes_.reserve(config_.dict_size);
  // Hash index sized once for the full dictionary: power of two with load
  // factor <= 1/2 even at dictionary freeze, so probes stay short.
  const std::size_t slots =
      std::bit_ceil<std::size_t>(std::max<std::size_t>(16, 2 * config_.dict_size));
  index_.assign(slots, IndexSlot{});
  index_shift_ = 64 - static_cast<unsigned>(std::countr_zero(slots));
  // Literal codes: one root per possible uncompressed character.
  for (std::uint32_t c = 0; c < config_.literal_count(); ++c) {
    Node n;
    n.parent = kNoCode;
    n.ch = c;
    n.length = 1;
    nodes_.push_back(std::move(n));
  }
  next_code_ = config_.literal_count();
  longest_bits_ = config_.char_bits;
}

std::uint32_t Dictionary::first_char(std::uint32_t code) const {
  TDC_REQUIRE(defined(code), "first_char: undefined code");
  while (nodes_[code].parent != kNoCode) code = nodes_[code].parent;
  return nodes_[code].ch;
}

std::vector<std::uint32_t> Dictionary::expand(std::uint32_t code) const {
  TDC_REQUIRE(defined(code), "expand: undefined code");
  std::vector<std::uint32_t> out;
  out.reserve(length(code));
  for (std::uint32_t c = code; c != kNoCode; c = nodes_[c].parent) {
    out.push_back(nodes_[c].ch);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

void Dictionary::index_insert(std::uint32_t parent, std::uint32_t ch,
                              std::uint32_t child) {
  const std::uint64_t key = index_key(parent, ch);
  const std::size_t mask = index_.size() - 1;
  std::size_t slot = index_home(key);
  while (index_[slot].key != kEmptySlot) slot = (slot + 1) & mask;
  index_[slot] = IndexSlot{.key = key, .child = child};
}

std::uint32_t Dictionary::add(std::uint32_t parent, std::uint32_t ch) {
  assert(defined(parent));
  assert(ch < config_.literal_count());
  assert(child(parent, ch) == kNoCode);
  if (full() || !extendable(parent)) return kNoCode;
  const std::uint32_t code = next_code_++;
  Node n;
  n.parent = parent;
  n.ch = ch;
  n.length = nodes_[parent].length + 1;
  const std::uint32_t new_length = n.length;
  nodes_.push_back(std::move(n));
  nodes_[parent].children.emplace_back(ch, code);
  index_insert(parent, ch, code);
  longest_bits_ = std::max<std::uint64_t>(
      longest_bits_,
      static_cast<std::uint64_t>(new_length) * config_.char_bits);
  return code;
}

}  // namespace tdc::lzw
