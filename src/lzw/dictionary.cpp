#include "lzw/dictionary.h"

#include <algorithm>
#include <cassert>

namespace tdc::lzw {

Dictionary::Dictionary(const LzwConfig& config) : config_(config) {
  config_.validate();
  nodes_.reserve(config_.dict_size);
  // Literal codes: one root per possible uncompressed character.
  for (std::uint32_t c = 0; c < config_.literal_count(); ++c) {
    Node n;
    n.parent = kNoCode;
    n.ch = c;
    n.length = 1;
    nodes_.push_back(std::move(n));
  }
  next_code_ = config_.literal_count();
  longest_bits_ = config_.char_bits;
}

std::uint32_t Dictionary::first_char(std::uint32_t code) const {
  assert(defined(code));
  while (nodes_[code].parent != kNoCode) code = nodes_[code].parent;
  return nodes_[code].ch;
}

std::vector<std::uint32_t> Dictionary::expand(std::uint32_t code) const {
  assert(defined(code));
  std::vector<std::uint32_t> out;
  out.reserve(length(code));
  for (std::uint32_t c = code; c != kNoCode; c = nodes_[c].parent) {
    out.push_back(nodes_[c].ch);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::uint32_t Dictionary::child(std::uint32_t code, std::uint32_t ch) const {
  assert(defined(code));
  for (const auto& [c, child_code] : nodes_[code].children) {
    if (c == ch) return child_code;
  }
  return kNoCode;
}

std::uint32_t Dictionary::add(std::uint32_t parent, std::uint32_t ch) {
  assert(defined(parent));
  assert(ch < config_.literal_count());
  assert(child(parent, ch) == kNoCode);
  if (full() || !extendable(parent)) return kNoCode;
  const std::uint32_t code = next_code_++;
  Node n;
  n.parent = parent;
  n.ch = ch;
  n.length = nodes_[parent].length + 1;
  nodes_.push_back(std::move(n));
  nodes_[parent].children.emplace_back(ch, code);
  longest_bits_ = std::max<std::uint64_t>(
      longest_bits_, static_cast<std::uint64_t>(n.length) * config_.char_bits);
  return code;
}

}  // namespace tdc::lzw
