#ifndef TDC_LZW_VERIFY_H
#define TDC_LZW_VERIFY_H

#include <string>

#include "bits/tritvector.h"
#include "lzw/decoder.h"
#include "lzw/encoder.h"

namespace tdc::lzw {

/// Outcome of a round-trip verification.
struct VerifyReport {
  bool ok = false;
  std::string error;  // empty when ok
};

/// Checks the central correctness invariant of the scheme: decompressing the
/// encoder's output yields a fully specified stream that is *compatible* with
/// the ternary input — every care bit is reproduced exactly, every X was
/// bound to some concrete 0/1. Also cross-checks the packed bit stream
/// against the explicit code list.
VerifyReport verify_roundtrip(const bits::TritVector& input,
                              const EncodeResult& encoded);

/// Convenience: encode + verify in one call.
VerifyReport encode_and_verify(const LzwConfig& config,
                               const bits::TritVector& input,
                               XAssignMode mode = XAssignMode::Dynamic,
                               Tiebreak tiebreak = Tiebreak::First);

}  // namespace tdc::lzw

#endif  // TDC_LZW_VERIFY_H
