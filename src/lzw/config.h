#ifndef TDC_LZW_CONFIG_H
#define TDC_LZW_CONFIG_H

#include <bit>
#include <cstdint>
#include <string>

#include "core/contracts.h"
#include "core/error.h"

namespace tdc::lzw {

/// Static configuration of the LZW codec, mirroring the paper's
/// "configurator block" (§3): everything here is agreed between the
/// compression tool and the on-chip decompressor before any data is sent.
///
/// Terminology follows the paper:
///   * `dict_size`  — N, total number of codes (literals + dictionary entries)
///   * `char_bits`  — C_C, width of one uncompressed character
///   * `entry_bits` — C_MDATA, width of the dictionary memory's data field,
///                    i.e. the maximum uncompressed expansion of any code
/// Derived:
///   * code_bits()  — C_E = ceil(log2 N), width of one compressed character
///   * literal_count() — 2^C_C; codes [0, 2^C_C) are implicit literals
///   * max_entry_chars() — floor(C_MDATA / C_C), entry cap in characters
struct LzwConfig {
  std::uint32_t dict_size = 1024;
  std::uint32_t char_bits = 7;
  std::uint32_t entry_bits = 63;

  /// false (the paper's hardware): every code is a fixed C_E bits. true:
  /// classic software LZW code growth — a code is transmitted in just
  /// enough bits to address the dictionary codes defined at that moment,
  /// growing toward C_E as the dictionary fills. Saves a few percent early
  /// in the stream at the cost of a variable-width input shifter
  /// (quantified by bench/ablation_codewidth).
  bool variable_width = false;

  /// C_E: number of bits per compressed code (the maximum, when
  /// variable_width is set).
  constexpr std::uint32_t code_bits() const {
    return dict_size <= 1 ? 1u : static_cast<std::uint32_t>(std::bit_width(dict_size - 1u));
  }

  /// Number of literal codes (one per possible uncompressed character).
  constexpr std::uint32_t literal_count() const { return 1u << char_bits; }

  /// First code index available for dictionary entries.
  constexpr std::uint32_t first_code() const { return literal_count(); }

  /// Maximum characters a single dictionary entry may expand to
  /// (bounded by the embedded-memory word width C_MDATA).
  constexpr std::uint32_t max_entry_chars() const { return entry_bits / char_bits; }

  /// True when the configuration leaves no room for dictionary codes —
  /// the degenerate "code exhaustion" regime of paper Table 4 (large C_C).
  constexpr bool degenerate() const {
    return dict_size <= literal_count() || max_entry_chars() < 2;
  }

  /// Why the configuration is not realizable, or the empty string when it
  /// is. The non-throwing core of validate(), used by the Result-returning
  /// container reader to map bad headers to a typed ConfigMismatch.
  std::string check() const {
    if (char_bits == 0 || char_bits > 16) {
      return "LzwConfig: char_bits must be in [1,16]";
    }
    if (dict_size < literal_count()) {
      return "LzwConfig: dict_size must cover all 2^char_bits literals";
    }
    if (entry_bits < char_bits) {
      return "LzwConfig: entry_bits must hold at least one character";
    }
    return {};
  }

  /// Raises Error{ConfigMismatch} (a std::invalid_argument) if the
  /// configuration is not realizable.
  void validate() const {
    if (const std::string why = check(); !why.empty()) {
      Error{ErrorKind::ConfigMismatch, why}.raise();
    }
  }

  std::string describe() const {
    return "N=" + std::to_string(dict_size) + " C_C=" + std::to_string(char_bits) +
           " C_MDATA=" + std::to_string(entry_bits) +
           " C_E=" + std::to_string(code_bits());
  }
};

namespace static_checks {

/// Compile-time proof of the paper's bit-width relations for every
/// configuration the tables evaluate (contracts::LzwContract static_asserts
/// C_E minimality, the C_MDATA entry bound and the Fig. 6 word geometry on
/// instantiation). A constant-derivation bug now fails this header's
/// compile instead of a golden-file test.
using contracts::LzwContract;

// The paper's default geometry (Tables 1-3, 6): N=1024, C_C=7, C_MDATA=63.
static_assert(LzwContract<1024, 7, 63>::checked);
static_assert(LzwContract<1024, 7, 63>::code_bits == 10);
static_assert(LzwContract<1024, 7, 63>::max_entry_chars == 9);

// Table 4 character-size sweep: C_C in {4..10} at N=1024.
static_assert(LzwContract<1024, 4, 63>::checked);
static_assert(LzwContract<1024, 5, 63>::checked);
static_assert(LzwContract<1024, 6, 63>::checked);
static_assert(LzwContract<1024, 8, 63>::checked);
static_assert(LzwContract<1024, 9, 63>::checked);
static_assert(LzwContract<1024, 10, 63>::checked);

// Table 5 entry-size sweep: C_MDATA in {15..127} at C_C=7.
static_assert(LzwContract<1024, 7, 15>::checked);
static_assert(LzwContract<1024, 7, 31>::checked);
static_assert(LzwContract<1024, 7, 127>::checked);
static_assert(LzwContract<1024, 7, 127>::max_entry_chars == 18);

// Dictionary-size sweep: N in {256..8192} at C_C=7 — C_E tracks ceil(log2 N).
static_assert(LzwContract<256, 7, 63>::code_bits == 8);
static_assert(LzwContract<512, 7, 63>::code_bits == 9);
static_assert(LzwContract<2048, 7, 63>::code_bits == 11);
static_assert(LzwContract<4096, 7, 63>::code_bits == 12);
static_assert(LzwContract<8192, 7, 63>::code_bits == 13);

}  // namespace static_checks

}  // namespace tdc::lzw

#endif  // TDC_LZW_CONFIG_H
