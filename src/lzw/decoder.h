#ifndef TDC_LZW_DECODER_H
#define TDC_LZW_DECODER_H

#include <cstdint>
#include <functional>
#include <vector>

#include "bits/bitstream.h"
#include "bits/tritvector.h"
#include "lzw/config.h"
#include "lzw/dictionary.h"

namespace tdc::lzw {

/// Output of a decompression run.
struct DecodeResult {
  /// The reconstructed, fully specified scan stream, truncated to the
  /// original (unpadded) bit count.
  bits::TritVector bits;

  /// Decoded characters before truncation (one per C_C output bits).
  std::vector<std::uint32_t> chars;

  /// Codes defined in the dictionary at the end (including literals);
  /// equals the encoder's count, or exceeds it by one trailing entry
  /// (the decoder also learns from the final code).
  std::uint32_t dict_codes_used = 0;
};

/// Software reference model of the LZW decompressor (paper §4 / Fig. 4),
/// including the classic "code not yet defined" (KwKwK) special case and the
/// same dictionary-limit and entry-width freeze rules as the encoder, so the
/// two dictionaries evolve in lockstep.
class Decoder {
 public:
  explicit Decoder(const LzwConfig& config) : config_(config) { config_.validate(); }

  /// Decodes an explicit code sequence. `original_bits` trims the X padding
  /// the encoder added to the final character.
  /// Throws std::invalid_argument on a corrupt stream (undefined code).
  DecodeResult decode(const std::vector<std::uint32_t>& codes,
                      std::uint64_t original_bits) const;

  /// Decodes `code_count` codes from a tester bit stream — fixed C_E-bit
  /// codes, or growing-width codes when config.variable_width is set (the
  /// width follows the dictionary fill level, in lockstep with the
  /// encoder).
  DecodeResult decode_stream(bits::BitReader& reader, std::size_t code_count,
                             std::uint64_t original_bits) const;

 private:
  /// Shared decode loop; `next_code(width)` supplies the next code, where
  /// `width` is the bit width a stream reader must consume.
  DecodeResult decode_impl(const std::function<std::uint32_t(std::uint32_t)>& next_code,
                           std::size_t code_count, std::uint64_t original_bits) const;

  LzwConfig config_;
};

}  // namespace tdc::lzw

#endif  // TDC_LZW_DECODER_H
