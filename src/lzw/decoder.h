#ifndef TDC_LZW_DECODER_H
#define TDC_LZW_DECODER_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "bits/bitstream.h"
#include "bits/tritvector.h"
#include "core/error.h"
#include "lzw/config.h"
#include "lzw/dictionary.h"
#include "lzw/telemetry.h"

namespace tdc::lzw {

/// Output of a decompression run.
struct DecodeResult {
  /// The reconstructed, fully specified scan stream, truncated to the
  /// original (unpadded) bit count.
  bits::TritVector bits;

  /// Decoded characters before truncation (one per C_C output bits).
  std::vector<std::uint32_t> chars;

  /// Codes defined in the dictionary at the end (including literals);
  /// equals the encoder's count, or exceeds it by one trailing entry
  /// (the decoder also learns from the final code).
  std::uint32_t dict_codes_used = 0;

  /// Hot-path telemetry: codes consumed, KwKwK hits, expansion-length
  /// histogram. Always collected (plain local increments, no locks);
  /// surfaced by `tdc_cli stats` on a container.
  DecoderTelemetry telemetry;
};

/// Software reference model of the LZW decompressor (paper §4 / Fig. 4),
/// including the classic "code not yet defined" (KwKwK) special case and the
/// same dictionary-limit and entry-width freeze rules as the encoder, so the
/// two dictionaries evolve in lockstep.
///
/// Every decode has two entry forms: a strict `try_*` path returning
/// `Result<DecodeResult>` with full position context (code index, payload
/// bit offset) on corrupt input, and a thin throwing wrapper preserving the
/// historical std::invalid_argument contract. The strict path is
/// bounds-checked throughout — no read past the end of the code stream, no
/// UB on any input.
class Decoder {
 public:
  explicit Decoder(const LzwConfig& config) : config_(config) { config_.validate(); }

  /// Strict decode of an explicit code sequence. `original_bits` trims the X
  /// padding the encoder added to the final character. On failure the Error
  /// carries the offending code index (UndefinedCode) or the decoded versus
  /// expected bit counts (StreamTooShort).
  Result<DecodeResult> try_decode(const std::vector<std::uint32_t>& codes,
                                  std::uint64_t original_bits) const;

  /// Strict decode of `code_count` codes from a tester bit stream — fixed
  /// C_E-bit codes, or growing-width codes when config.variable_width is set
  /// (the width follows the dictionary fill level, in lockstep with the
  /// encoder). Errors additionally carry the payload bit offset at which the
  /// failing code started.
  Result<DecodeResult> try_decode_stream(bits::BitReader& reader,
                                         std::size_t code_count,
                                         std::uint64_t original_bits) const;

  /// Throwing wrapper over try_decode (DecodeError, i.e.
  /// std::invalid_argument, on a corrupt stream).
  DecodeResult decode(const std::vector<std::uint32_t>& codes,
                      std::uint64_t original_bits) const {
    return try_decode(codes, original_bits).value_or_throw();
  }

  /// Throwing wrapper over try_decode_stream.
  DecodeResult decode_stream(bits::BitReader& reader, std::size_t code_count,
                             std::uint64_t original_bits) const {
    return try_decode_stream(reader, code_count, original_bits).value_or_throw();
  }

 private:
  /// Shared decode loop; `next_code(width)` supplies the next code (nullopt
  /// = source exhausted), where `width` is the bit width a stream reader
  /// must consume. `tell()` reports the current payload bit offset for
  /// error context, or -1 when decoding from an explicit code list.
  Result<DecodeResult> decode_impl(
      const std::function<std::optional<std::uint32_t>(std::uint32_t)>& next_code,
      const std::function<std::int64_t()>& tell, std::size_t code_count,
      std::uint64_t original_bits) const;

  LzwConfig config_;
};

}  // namespace tdc::lzw

#endif  // TDC_LZW_DECODER_H
