#ifndef TDC_OBS_LOG_H
#define TDC_OBS_LOG_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "core/thread_safety.h"

namespace tdc::obs {

/// Severity ladder; Off disables every site. Ordering is significant:
/// a Log at level L emits events at L and above.
enum class LogLevel : int { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Stable lower-case names ("debug" … "off") for CLI flags and rendering.
const char* log_level_name(LogLevel level);

/// Parses a log_level_name() spelling; Off for anything unknown.
LogLevel parse_log_level(const std::string& name);

/// Structured, leveled event log rendering one deterministic JSON object
/// per line — the daemon's replacement for ad-hoc fprintf(stderr) sites:
///
///   {"ts_ms": 12, "level": "info", "event": "server.listen", "socket": "…"}
///
/// Fields are typed (str/u64/i64/f64/boolean) and appear in call order
/// after the fixed ts_ms/level/event prologue; values render through the
/// same json_escape / fixed-precision rules everywhere, so given the same
/// events and clock the bytes are identical — tests pin lines verbatim.
///
/// Cost discipline mirrors TraceRecorder: a disabled site (level below the
/// threshold, the default Off included) costs exactly one relaxed atomic
/// load in event() and nothing else — no allocation, no clock read, no
/// lock. Only events that pass the level check build a line and take the
/// emit lock.
///
/// Flood control is a token bucket (burst + sustained per-second rate)
/// refilled from the log's clock: suppressed events are only counted, and
/// the next line that passes carries a "dropped": N field so the gap is
/// visible in the stream instead of silent.
class Log {
 public:
  using Sink = std::function<void(const std::string& line)>;

  struct Options {
    LogLevel level = LogLevel::Off;
    Sink sink;  ///< receives finished lines (no trailing newline)
    /// Sustained emit rate; 0 disables rate limiting entirely.
    double rate_per_sec = 0.0;
    /// Bucket capacity: how many events may burst past the sustained rate.
    double burst = 32.0;
    /// Millisecond clock for ts_ms and token refill. Defaults to the
    /// steady clock relative to configure(); tests inject a fake for
    /// byte-deterministic lines.
    std::function<std::uint64_t()> clock;
  };

  Log() = default;
  Log(const Log&) = delete;
  Log& operator=(const Log&) = delete;

  /// Installs level/sink/limits. Callable again to reconfigure; not
  /// concurrent with in-flight event() builders.
  void configure(Options options);

  /// The one-relaxed-load fast path every call site guards on.
  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= min_level_.load(std::memory_order_relaxed);
  }

  /// Builder for one event; emits on destruction. Inactive (all field
  /// calls no-ops) when the level is filtered.
  class Event {
   public:
    Event(Event&& other) noexcept : log_(other.log_), line_(std::move(other.line_)) {
      other.log_ = nullptr;
    }
    ~Event();

    Event& str(const char* key, const std::string& value);
    Event& u64(const char* key, std::uint64_t value);
    Event& i64(const char* key, std::int64_t value);
    Event& f64(const char* key, double value);  ///< three decimals
    Event& boolean(const char* key, bool value);

    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;
    Event& operator=(Event&&) = delete;

   private:
    friend class Log;
    Event() = default;  ///< inactive
    Event(Log* log, LogLevel level, const char* name);

    Log* log_ = nullptr;  ///< nullptr = filtered, every call a no-op
    std::string line_;
  };

  /// Starts one event. `name` identifies the event kind ("conn.refused");
  /// dotted lower-case names keep the stream greppable.
  Event event(LogLevel level, const char* name);

  Event debug(const char* name) { return event(LogLevel::Debug, name); }
  Event info(const char* name) { return event(LogLevel::Info, name); }
  Event warn(const char* name) { return event(LogLevel::Warn, name); }
  Event error(const char* name) { return event(LogLevel::Error, name); }

  /// Lines handed to the sink / suppressed by the token bucket so far.
  std::uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

 private:
  std::uint64_t now_millis();
  void emit(std::string line);  ///< token-bucket check + sink, under lock

  // tdc-sync: relaxed level filter — configure() installs the sink and
  // bucket state under mutex_ *before* storing the level, so any site that
  // sees the new level finds the sink already in place when it takes the
  // lock in emit(); stale reads just keep the old filter one event longer.
  std::atomic<int> min_level_{static_cast<int>(LogLevel::Off)};
  // tdc-sync: statistics — relaxed add/load, no reader infers other state.
  std::atomic<std::uint64_t> emitted_{0};
  // tdc-sync: statistics — relaxed add/load, no reader infers other state.
  std::atomic<std::uint64_t> dropped_{0};

  core::Mutex mutex_;  ///< guards sink_, bucket state, pending_dropped_
  Sink sink_ TDC_GUARDED_BY(mutex_);
  /// Deliberately outside mutex_: Event builders read the clock without the
  /// lock, which configure()'s contract makes safe (no reconfiguration
  /// concurrent with in-flight builders).
  std::function<std::uint64_t()> clock_;
  double rate_per_sec_ TDC_GUARDED_BY(mutex_) = 0.0;
  double burst_ TDC_GUARDED_BY(mutex_) = 32.0;
  double tokens_ TDC_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t refilled_at_millis_ TDC_GUARDED_BY(mutex_) = 0;
  std::uint64_t pending_dropped_ TDC_GUARDED_BY(mutex_) = 0;
};

}  // namespace tdc::obs

#endif  // TDC_OBS_LOG_H
