#ifndef TDC_OBS_OPENMETRICS_H
#define TDC_OBS_OPENMETRICS_H

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace tdc::obs {

/// A registry name ("serve.compress.micros") as a legal OpenMetrics metric
/// name: every character outside [a-zA-Z0-9_] becomes '_', and the result
/// carries the "tdc_" exposition prefix ("tdc_serve_compress_micros").
std::string openmetrics_name(const std::string& name);

/// Renders one registry snapshot in the OpenMetrics text exposition format
/// (the Prometheus scrape format):
///
///   - every Counter is a `counter` family; its single sample carries the
///     mandatory `_total` suffix,
///   - every Gauge is two `gauge` families: the level under its own name
///     and the high-watermark under `<name>_peak`,
///   - every Histogram is a `summary` family: p50/p95/p99 as `quantile`
///     labels plus the exact `_sum`/`_count` pair (the log2 buckets stay a
///     JSON-side detail; quantiles are what dashboards plot).
///
/// Families are emitted in name order and the output ends with the `# EOF`
/// terminator, so the rendering is deterministic and a strict parser
/// accepts it (tools/check_openmetrics.py validates exactly this grammar
/// in CI).
std::string openmetrics_render(const RegistrySnapshot& snapshot);

/// Convenience overload: snapshot + render under the registry's lock
/// discipline — what the daemon's `metrics` op serves.
std::string openmetrics_render(const MetricsRegistry& registry);

/// One newline-free JSON object for the daemon's `--metrics-log` NDJSON
/// stream: {"ts_ms": …, "counters": {…}, "gauges": {name: {"value": …,
/// "peak": …}, …}, "histograms": {name: {count, sum, min, max, mean, p50,
/// p95, p99}, …}}. Keys sorted, histograms summarized without buckets —
/// one line per sampler tick stays greppable and cheap to append forever.
std::string metrics_ndjson_line(const RegistrySnapshot& snapshot,
                                std::uint64_t ts_millis);

/// Resident set size of the calling process in bytes, read from
/// /proc/self/statm; 0 where that interface does not exist. Cheap enough
/// for a once-per-second sampler, not for a hot loop.
std::uint64_t process_rss_bytes();

}  // namespace tdc::obs

#endif  // TDC_OBS_OPENMETRICS_H
