#include "obs/openmetrics.h"

#include <cstdio>

#include "obs/json.h"

#include <unistd.h>

namespace tdc::obs {

namespace {

/// %g-style float rendering for sample values: integral values print with
/// no fraction ("12"), others with enough digits to round-trip a quantile.
std::string number(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  return buf;
}

void type_line(std::string& out, const std::string& family, const char* type) {
  out += "# TYPE " + family + " " + type + "\n";
}

}  // namespace

std::string openmetrics_name(const std::string& name) {
  std::string out = "tdc_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_';
    out += legal ? c : '_';
  }
  return out;
}

std::string openmetrics_render(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string family = openmetrics_name(name);
    type_line(out, family, "counter");
    out += family + "_total " + std::to_string(value) + "\n";
  }
  for (const auto& [name, g] : snapshot.gauges) {
    const std::string family = openmetrics_name(name);
    type_line(out, family, "gauge");
    out += family + " " + std::to_string(g.value) + "\n";
    type_line(out, family + "_peak", "gauge");
    out += family + "_peak " + std::to_string(g.peak) + "\n";
  }
  for (const auto& [name, s] : snapshot.histograms) {
    const std::string family = openmetrics_name(name);
    type_line(out, family, "summary");
    out += family + "{quantile=\"0.5\"} " + number(s.p50()) + "\n";
    out += family + "{quantile=\"0.95\"} " + number(s.p95()) + "\n";
    out += family + "{quantile=\"0.99\"} " + number(s.p99()) + "\n";
    out += family + "_sum " + std::to_string(s.sum) + "\n";
    out += family + "_count " + std::to_string(s.count) + "\n";
  }
  out += "# EOF\n";
  return out;
}

std::string openmetrics_render(const MetricsRegistry& registry) {
  return openmetrics_render(registry.snapshot());
}

std::string metrics_ndjson_line(const RegistrySnapshot& snapshot,
                                std::uint64_t ts_millis) {
  std::string out = "{\"ts_ms\": " + std::to_string(ts_millis);
  out += ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    out += first ? "\"" : ", \"";
    out += json_escape(name);
    out += "\": ";
    out += std::to_string(value);
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : snapshot.gauges) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "{\"value\": %lld, \"peak\": %lld}",
                  static_cast<long long>(g.value),
                  static_cast<long long>(g.peak));
    out += first ? "\"" : ", \"";
    out += json_escape(name);
    out += "\": ";
    out += buf;
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const auto& [name, s] : snapshot.histograms) {
    out += first ? "\"" : ", \"";
    out += json_escape(name);
    out += "\": ";
    out += snapshot_summary_json(s);
    first = false;
  }
  out += "}}";
  return out;
}

std::uint64_t process_rss_bytes() {
#if defined(__linux__)
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  unsigned long long total_pages = 0;
  unsigned long long resident_pages = 0;
  const int got = std::fscanf(statm, "%llu %llu", &total_pages, &resident_pages);
  std::fclose(statm);
  if (got != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::uint64_t>(resident_pages) *
         static_cast<std::uint64_t>(page);
#else
  return 0;
#endif
}

}  // namespace tdc::obs
