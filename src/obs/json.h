#ifndef TDC_OBS_JSON_H
#define TDC_OBS_JSON_H

#include <string>

namespace tdc::obs {

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters). A local copy of exp::json_escape so the
/// observability layer stays dependency-free — obs sits below every other
/// subsystem and must not pull the experiment stack into the codec core.
std::string json_escape(const std::string& s);

}  // namespace tdc::obs

#endif  // TDC_OBS_JSON_H
