#include "obs/log.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "obs/json.h"

namespace tdc::obs {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "off";
}

LogLevel parse_log_level(const std::string& name) {
  for (const LogLevel level : {LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
                               LogLevel::Error, LogLevel::Off}) {
    if (name == log_level_name(level)) return level;
  }
  return LogLevel::Off;
}

void Log::configure(Options options) {
  core::MutexLock lock(mutex_);
  sink_ = std::move(options.sink);
  rate_per_sec_ = options.rate_per_sec;
  burst_ = options.burst < 1.0 ? 1.0 : options.burst;
  tokens_ = burst_;  // a fresh log may burst immediately
  pending_dropped_ = 0;
  if (options.clock) {
    clock_ = std::move(options.clock);
  } else {
    const auto epoch = std::chrono::steady_clock::now();
    clock_ = [epoch] {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - epoch)
              .count());
    };
  }
  refilled_at_millis_ = clock_();
  // Publish the level last: sites that race configure() either stay on the
  // old filter or see the fully-installed new one.
  const LogLevel level = sink_ ? options.level : LogLevel::Off;
  min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::uint64_t Log::now_millis() { return clock_ ? clock_() : 0; }

Log::Event::Event(Log* log, LogLevel level, const char* name) : log_(log) {
  line_ = "{\"ts_ms\": " + std::to_string(log->now_millis());
  line_ += ", \"level\": \"";
  line_ += log_level_name(level);
  line_ += "\", \"event\": \"";
  line_ += json_escape(name);
  line_ += "\"";
}

Log::Event::~Event() {
  if (log_ == nullptr) return;
  line_ += "}";
  log_->emit(std::move(line_));
}

Log::Event& Log::Event::str(const char* key, const std::string& value) {
  if (log_ != nullptr) {
    line_ += ", \"";
    line_ += json_escape(key);
    line_ += "\": \"";
    line_ += json_escape(value);
    line_ += "\"";
  }
  return *this;
}

Log::Event& Log::Event::u64(const char* key, std::uint64_t value) {
  if (log_ != nullptr) {
    line_ += ", \"";
    line_ += json_escape(key);
    line_ += "\": ";
    line_ += std::to_string(value);
  }
  return *this;
}

Log::Event& Log::Event::i64(const char* key, std::int64_t value) {
  if (log_ != nullptr) {
    line_ += ", \"";
    line_ += json_escape(key);
    line_ += "\": ";
    line_ += std::to_string(value);
  }
  return *this;
}

Log::Event& Log::Event::f64(const char* key, double value) {
  if (log_ != nullptr) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.3f", value);
    line_ += ", \"";
    line_ += json_escape(key);
    line_ += "\": ";
    line_ += buf;
  }
  return *this;
}

Log::Event& Log::Event::boolean(const char* key, bool value) {
  if (log_ != nullptr) {
    line_ += ", \"";
    line_ += json_escape(key);
    line_ += "\": ";
    line_ += value ? "true" : "false";
  }
  return *this;
}

Log::Event Log::event(LogLevel level, const char* name) {
  if (!enabled(level)) return Event();  // the whole disabled-site cost
  return Event(this, level, name);
}

void Log::emit(std::string line) {
  core::MutexLock lock(mutex_);
  if (!sink_) return;
  if (rate_per_sec_ > 0.0) {
    const std::uint64_t now = now_millis();
    if (now > refilled_at_millis_) {
      const double elapsed_sec =
          static_cast<double>(now - refilled_at_millis_) / 1000.0;
      tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
      refilled_at_millis_ = now;
    }
    if (tokens_ < 1.0) {
      ++pending_dropped_;
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    tokens_ -= 1.0;
  }
  if (pending_dropped_ > 0) {
    // Surface the gap in-band: the first line after a suppression window
    // says how many events the bucket swallowed.
    line.insert(line.size() - 1,
                ", \"dropped\": " + std::to_string(pending_dropped_));
    pending_dropped_ = 0;
  }
  emitted_.fetch_add(1, std::memory_order_relaxed);
  sink_(line);
}

}  // namespace tdc::obs
