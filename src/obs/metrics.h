#ifndef TDC_OBS_METRICS_H
#define TDC_OBS_METRICS_H

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_safety.h"

namespace tdc::obs {

/// Monotonic event counter (thread-safe, relaxed — counters are statistics,
/// not synchronization).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  // tdc-sync: pure statistic — relaxed add/load; no reader infers other
  // state from the count, so no ordering is needed.
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level with a high-watermark: queue occupancy, in-flight
/// jobs, live connections, RSS. set()/add() fold the peak as a side effect,
/// so "how bad did it get" survives the level dropping back to zero. Signed,
/// because add(-1) on connection close is the natural call shape; relaxed
/// atomics — like Counter, gauges are statistics, not synchronization.
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    fold_peak(v);
  }
  void add(std::int64_t delta) {
    const std::int64_t now =
        value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    fold_peak(now);
  }
  /// Raises the high-watermark without touching the level — how an external
  /// peak (e.g. a queue's own max-depth counter) folds into the gauge.
  void record_peak(std::int64_t v) { fold_peak(v); }

  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  void fold_peak(std::int64_t v) {
    std::int64_t seen = peak_.load(std::memory_order_relaxed);
    // Both the success and the failure order are relaxed: a failed CAS only
    // reloads `seen`, it publishes nothing.
    while (v > seen &&
           !peak_.compare_exchange_weak(seen, v, std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
    }
  }

  // tdc-sync: statistic like Counter — relaxed everywhere, no reader infers
  // other state from the level.
  std::atomic<std::int64_t> value_{0};
  // tdc-sync: relaxed CAS fold — the loop in fold_peak is monotone (peak
  // only grows), so racing folds converge to max regardless of order.
  std::atomic<std::int64_t> peak_{0};
};

/// Rolling per-second rate reconstructed from samples of one monotonic
/// counter: feed (timestamp, counter value) pairs and per_second() answers
/// over the retained window — how `stats --follow` turns two OpenMetrics
/// scrapes into a live requests/sec readout. Deterministic and clock-free:
/// the caller supplies every timestamp, so tests drive it with synthetic
/// millis. Single-threaded by design (a display loop owns it).
class RateWindow {
 public:
  explicit RateWindow(std::size_t capacity = 32)
      : capacity_(capacity == 0 ? 2 : capacity) {}

  /// Appends one observation of the counter. A value below the previous
  /// sample means the counter restarted (daemon bounce) — the window resets
  /// rather than reporting a huge negative rate.
  void sample(std::uint64_t at_millis, std::uint64_t value) {
    if (!points_.empty() && value < points_.back().value) points_.clear();
    points_.push_back({at_millis, value});
    if (points_.size() > capacity_) points_.erase(points_.begin());
  }

  /// Counter increase per second across the whole retained window; 0 with
  /// fewer than two samples or zero elapsed time.
  double per_second() const {
    if (points_.size() < 2) return 0.0;
    const Point& oldest = points_.front();
    const Point& newest = points_.back();
    if (newest.at_millis <= oldest.at_millis) return 0.0;
    return 1000.0 * static_cast<double>(newest.value - oldest.value) /
           static_cast<double>(newest.at_millis - oldest.at_millis);
  }

  std::size_t size() const { return points_.size(); }

 private:
  struct Point {
    std::uint64_t at_millis;
    std::uint64_t value;
  };
  std::size_t capacity_;
  std::vector<Point> points_;
};

/// Bucket count shared by every histogram: 48 log2 buckets cover ~3 days in
/// µs and ~256 TB in bytes.
inline constexpr std::size_t kHistogramBuckets = 48;

/// Bucket index for a sample: 0 holds value 0, bucket b holds [2^(b-1), 2^b),
/// the last bucket is a catch-all. Inline — called per histogram sample on
/// the codec hot path.
inline std::size_t bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(value));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Inclusive upper bound of bucket b (0 for b = 0, else 2^b - 1).
inline std::uint64_t bucket_upper(std::size_t b) {
  return b == 0 ? 0 : (1ull << b) - 1;
}

/// Accumulated state of a log2-bucketed histogram: bucket b counts samples
/// in [2^(b-1), 2^b). 48 buckets cover ~3 days in µs and ~256 TB in bytes.
/// Shared between the thread-safe Histogram and the unsynchronized
/// LocalHistogram so both report through the same snapshot shape.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = kHistogramBuckets;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  /// Unsynchronized accumulate — Histogram wraps this under its lock.
  /// Defined inline: the codec hot loop records through LocalHistogram on
  /// every emitted code, and an out-of-line call here is measurable in
  /// micro_codec.
  void add(std::uint64_t value) {
    // Snapshot.min defaults to 0 for the empty histogram, so the very first
    // sample must seed it unconditionally — otherwise a series whose
    // smallest value is nonzero would report min=0 forever (pinned by
    // HistogramFirstSampleSeedsMin in obs_test).
    if (count == 0 || value < min) min = value;
    if (value > max) max = value;
    ++count;
    sum += value;
    ++buckets[bucket_of(value)];
  }

  /// Accumulates `n` identical samples in O(1). The resulting snapshot is
  /// exactly what `n` individual add(value) calls would produce (all the
  /// accumulate operations commute), which lets a hot loop count repeats in
  /// a plain array and fold them in afterwards.
  void add_repeated(std::uint64_t value, std::uint64_t n) {
    if (n == 0) return;
    if (count == 0 || value < min) min = value;
    if (value > max) max = value;
    count += n;
    sum += value * n;
    buckets[bucket_of(value)] += n;
  }

  /// Merges another snapshot into this one (bucket-wise sum, min/max fold).
  void merge(const HistogramSnapshot& other);

  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }

  /// Approximate quantile (q in [0, 1]) reconstructed from the log2 buckets:
  /// the sample rank is located in its bucket and interpolated linearly
  /// between the bucket bounds, clamped to the exact [min, max] envelope.
  /// 0 when empty. Deterministic — same samples, same answer.
  double percentile(double q) const;

  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }
};

/// Thread-safe log2-bucketed histogram; the engine records stage latencies
/// in microseconds and payload sizes in bytes through these.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;
  using Snapshot = HistogramSnapshot;

  void record(std::uint64_t value) {
    core::MutexLock lock(mutex_);
    data_.add(value);
  }

  /// Folds a whole pre-accumulated snapshot in under one lock acquisition —
  /// how a worker's LocalHistogram shard publishes at thread exit, replacing
  /// a lock round-trip per sample with one per worker.
  void merge(const Snapshot& other) {
    core::MutexLock lock(mutex_);
    data_.merge(other);
  }

  Snapshot snapshot() const {
    core::MutexLock lock(mutex_);
    return data_;
  }

 private:
  mutable core::Mutex mutex_;
  HistogramSnapshot data_ TDC_GUARDED_BY(mutex_);
};

/// Unsynchronized histogram for single-thread hot paths (codec telemetry):
/// record() is a handful of plain integer operations, no lock, no atomics.
/// Publish by value, or merge into a shared Histogram when the run ends.
class LocalHistogram {
 public:
  void record(std::uint64_t value) { data_.add(value); }
  void record_repeated(std::uint64_t value, std::uint64_t n) {
    data_.add_repeated(value, n);
  }
  const HistogramSnapshot& snapshot() const { return data_; }

 private:
  HistogramSnapshot data_;
};

/// Records the lifetime of the scope into a histogram as microseconds —
/// wrap one stage execution and the latency lands in `<stage>.micros`.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// `{"count": …, "sum": …, "min": …, "max": …, "mean": …, "p50": …,
/// "p95": …, "p99": …}` — the summary fields of one snapshot, without the
/// bucket array. Deterministic; floats render with three decimals.
std::string snapshot_summary_json(const HistogramSnapshot& s);

/// One-line human-readable digest of a snapshot for CLI report surfaces:
/// `count=8 min=1024 p50=4096.0 p95=4096.0 p99=4096.0 max=4096 mean=3712.0`.
std::string snapshot_summary_line(const HistogramSnapshot& s);

/// Point-in-time copy of one gauge (value + high-watermark).
struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t peak = 0;
};

/// Consistent-enough copy of a whole registry: each instrument read
/// atomically, the instrument set under the registry lock. This is the
/// input shape shared by every exporter (to_json, openmetrics_render,
/// metrics_ndjson_line), so they can never disagree about what exists.
struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named counters + gauges + histograms, created on first use and stable for
/// the registry's lifetime — the engine instruments every stage through one
/// of these, and benches read the same numbers the production path records.
///
/// counter()/gauge()/histogram() return references that stay valid until the
/// registry is destroyed, so hot paths resolve a name once and keep the
/// pointer. to_json() is a consistent-enough snapshot for reporting: each
/// instrument is read atomically, the set of instruments under a lock.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Copies every instrument (exporter input; see RegistrySnapshot).
  RegistrySnapshot snapshot() const;

  /// {"counters": {name: value, ...}, "gauges": {name: {value, peak}, ...},
  /// "histograms": {name: {count, sum, min, max, mean, p50, p95, p99,
  /// buckets: [[upper_bound, count], ...]}, ...}} — keys sorted (std::map),
  /// so the rendering is deterministic.
  std::string to_json() const;

 private:
  /// Guards the maps (the instrument *set*), not the instruments — those
  /// are internally synchronized and outlive any lookup.
  mutable core::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ TDC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ TDC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      TDC_GUARDED_BY(mutex_);
};

/// Prefix-scoped view of a registry: MetricScope(reg, "serve.compress")
/// resolves counter("requests") to the registry's "serve.compress.requests".
/// Cheap to copy; instruments keep registry lifetime. The service daemon
/// gives every endpoint its own scope so per-op counters never collide and
/// a new endpoint never has to invent its own dotted-name discipline.
class MetricScope {
 public:
  MetricScope(MetricsRegistry& registry, std::string prefix)
      : registry_(&registry), prefix_(std::move(prefix)) {}

  Counter& counter(const std::string& name) const {
    return registry_->counter(qualified(name));
  }
  Gauge& gauge(const std::string& name) const {
    return registry_->gauge(qualified(name));
  }
  Histogram& histogram(const std::string& name) const {
    return registry_->histogram(qualified(name));
  }

  /// A nested scope: scoped("errors") under "serve" is "serve.errors.*".
  MetricScope scoped(const std::string& sub) const {
    return MetricScope(*registry_, qualified(sub));
  }

  const std::string& prefix() const { return prefix_; }
  MetricsRegistry& registry() const { return *registry_; }

 private:
  std::string qualified(const std::string& name) const {
    return prefix_.empty() ? name : prefix_ + "." + name;
  }

  MetricsRegistry* registry_;
  std::string prefix_;
};

}  // namespace tdc::obs

#endif  // TDC_OBS_METRICS_H
