#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "obs/json.h"

namespace tdc::obs {

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  // Empty snapshots report min = 0 as a placeholder, not as a sample, so
  // both directions of the fold must special-case count == 0: merging an
  // empty `other` must change nothing (early return — its min/max are not
  // data), and merging into an empty `this` must adopt other.min even when
  // it is larger than the placeholder 0 (the `count == 0` seed below).
  // Pinned by MergeSeedsMinFromFirstNonEmptySnapshot in obs_test.
  if (other.count == 0) return;
  if (count == 0 || other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the requested sample, 1-based (nearest-rank definition).
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count) + 0.5));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] < rank) {
      seen += buckets[b];
      continue;
    }
    // The rank lands in bucket b: interpolate linearly across the bucket
    // span by the rank's position within the bucket, then clamp to the
    // exact envelope so p0/p100 degenerate to min/max.
    const double lower = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
    const double upper = static_cast<double>(bucket_upper(b));
    const double within = buckets[b] <= 1
                              ? 1.0
                              : static_cast<double>(rank - seen) /
                                    static_cast<double>(buckets[b]);
    const double value = lower + (upper - lower) * within;
    return std::clamp(value, static_cast<double>(min), static_cast<double>(max));
  }
  return static_cast<double>(max);
}

std::string snapshot_summary_json(const HistogramSnapshot& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
                "\"max\": %llu, \"mean\": %.3f, \"p50\": %.3f, "
                "\"p95\": %.3f, \"p99\": %.3f}",
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.sum),
                static_cast<unsigned long long>(s.min),
                static_cast<unsigned long long>(s.max), s.mean(), s.p50(),
                s.p95(), s.p99());
  return buf;
}

std::string snapshot_summary_line(const HistogramSnapshot& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "count=%llu min=%llu p50=%.1f p95=%.1f p99=%.1f max=%llu "
                "mean=%.1f",
                static_cast<unsigned long long>(s.count),
                static_cast<unsigned long long>(s.min), s.p50(), s.p95(),
                s.p99(), static_cast<unsigned long long>(s.max), s.mean());
  return buf;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  core::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  core::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  core::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  core::MutexLock lock(mutex_);
  RegistrySnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, GaugeSnapshot{gauge->value(), gauge->peak()});
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->snapshot());
  }
  return snap;
}

std::string MetricsRegistry::to_json() const {
  core::MutexLock lock(mutex_);
  std::string json = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    json += first ? "\n" : ",\n";
    json += "    \"" + json_escape(name) + "\": " + std::to_string(counter->value());
    first = false;
  }
  json += first ? "},\n" : "\n  },\n";
  json += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    char buf[96];
    std::snprintf(buf, sizeof buf, "{\"value\": %lld, \"peak\": %lld}",
                  static_cast<long long>(gauge->value()),
                  static_cast<long long>(gauge->peak()));
    json += first ? "\n" : ",\n";
    json += "    \"" + json_escape(name) + "\": " + buf;
    first = false;
  }
  json += first ? "},\n" : "\n  },\n";
  json += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const HistogramSnapshot s = histogram->snapshot();
    json += first ? "\n" : ",\n";
    json += "    \"" + json_escape(name) + "\": ";
    std::string body = snapshot_summary_json(s);
    body.pop_back();  // drop the closing '}' to append the bucket array
    json += body + ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (s.buckets[b] == 0) continue;
      char buf[64];
      std::snprintf(buf, sizeof buf, "%s[%llu, %llu]", first_bucket ? "" : ", ",
                    static_cast<unsigned long long>(bucket_upper(b)),
                    static_cast<unsigned long long>(s.buckets[b]));
      json += buf;
      first_bucket = false;
    }
    json += "]}";
    first = false;
  }
  json += first ? "}\n}\n" : "\n  }\n}\n";
  return json;
}

}  // namespace tdc::obs
