#ifndef TDC_OBS_TRACE_H
#define TDC_OBS_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/thread_safety.h"

namespace tdc::obs {

/// One completed span, rendered as a Chrome trace_event "X" (complete)
/// event: {"name", "ph": "X", "ts", "dur", "pid", "tid", "args": {…}}.
struct TraceEvent {
  const char* name = "";           ///< static string (span call sites)
  std::uint64_t ts_micros = 0;     ///< begin, relative to enable()
  std::uint64_t dur_micros = 0;
  std::uint32_t tid = 0;           ///< small stable per-thread id
  std::vector<std::pair<std::string, std::string>> args;
};

/// Process-wide span recorder, off by default and near-zero cost while off:
/// every instrumentation site is guarded by one relaxed atomic load, and no
/// timestamp is taken, no memory touched, until enable() flips it on.
///
/// While enabled, finished spans are buffered per thread (each thread owns a
/// registered buffer with its own mutex, so recording threads never contend
/// with each other) and flush() drains every buffer into one Chrome
/// trace_event JSON file — load it in Perfetto or chrome://tracing. Events
/// are sorted by (ts, tid, name) before writing, so the file bytes depend
/// only on the recorded spans' timing, never on drain order.
///
/// The CLI wires this to `--trace <file>` / $TDC_TRACE; tests enable and
/// flush it directly.
class TraceRecorder {
 public:
  /// The process-wide recorder every TraceSpan reports to.
  static TraceRecorder& global();

  /// Starts recording; flush() will write to `path`. Resets the time base
  /// and drops spans from any previous recording window.
  void enable(std::string path);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Stops recording, drains every thread buffer, writes the JSON file set
  /// by enable(). Returns false (with a message on stderr) on I/O failure.
  bool flush();

  /// Drains and renders into `out` instead of the file (test hook; also
  /// stops recording).
  void write_json(std::ostream& out);

  /// Appends one finished span to the calling thread's buffer (no-op when
  /// disabled — TraceSpan checks enabled() first, this re-checks cheaply).
  void record(TraceEvent event);

  /// Microseconds since enable() on the steady clock.
  std::uint64_t now_micros() const;

  /// Number of spans recorded since enable() (test hook; drains nothing).
  std::size_t event_count();

 private:
  struct ThreadBuffer {
    core::Mutex mutex;
    /// Written once at registration (under the recorder's mutex_, before
    /// the buffer is published); immutable afterwards, so reads are free.
    std::uint32_t tid = 0;
    std::vector<TraceEvent> events TDC_GUARDED_BY(mutex);
  };

  /// The calling thread's buffer, registered with the recorder on first
  /// use. shared_ptr so a buffer outlives its thread until flush().
  ThreadBuffer& local_buffer();

  std::vector<TraceEvent> drain();

  // tdc-sync: relaxed on/off gate — enable() installs path_/epoch_ before
  // the store, and a site that reads a stale false only skips one span;
  // drain() clears it first so late recorders see the gate shut.
  std::atomic<bool> enabled_{false};
  /// Reset by enable() only; recording threads read it unguarded, which the
  /// enable-before-record call order makes safe (same contract as clock_ in
  /// Log).
  std::chrono::steady_clock::time_point epoch_{};
  core::Mutex mutex_;  // guards path_, buffers_, next_tid_
  std::string path_ TDC_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_ TDC_GUARDED_BY(mutex_);
  std::uint32_t next_tid_ TDC_GUARDED_BY(mutex_) = 1;
};

/// RAII span: times the enclosing scope and reports it to the global
/// recorder on destruction. `name` must be a string literal (or otherwise
/// outlive the span). When the recorder is disabled, construction is one
/// relaxed atomic load and arg() is a no-op — cheap enough for per-job and
/// per-stream call sites (not per-character loops; those use telemetry
/// counters instead).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceRecorder::global().enabled()) {
      active_ = true;
      event_.name = name;
      event_.ts_micros = TraceRecorder::global().now_micros();
    }
  }

  /// Attaches a key=value attribute (shown in the viewer's args pane).
  void arg(const char* key, std::string value) {
    if (active_) event_.args.emplace_back(key, std::move(value));
  }
  void arg(const char* key, std::uint64_t value) {
    if (active_) event_.args.emplace_back(key, std::to_string(value));
  }

  ~TraceSpan() {
    if (!active_) return;
    event_.dur_micros = TraceRecorder::global().now_micros() - event_.ts_micros;
    TraceRecorder::global().record(std::move(event_));
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  bool active_ = false;
  TraceEvent event_;
};

}  // namespace tdc::obs

#endif  // TDC_OBS_TRACE_H
