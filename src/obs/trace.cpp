#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/json.h"

namespace tdc::obs {

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable(std::string path) {
  core::MutexLock lock(mutex_);
  path_ = std::move(path);
  epoch_ = std::chrono::steady_clock::now();
  for (const auto& buffer : buffers_) {
    core::MutexLock buffer_lock(buffer->mutex);
    buffer->events.clear();
  }
  enabled_.store(true, std::memory_order_relaxed);
}

std::uint64_t TraceRecorder::now_micros() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // One buffer per (thread, recorder-lifetime); registered once, retained by
  // the recorder until process exit so flush() can still drain buffers of
  // threads that have already finished.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    core::MutexLock lock(mutex_);
    b->tid = next_tid_++;
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void TraceRecorder::record(TraceEvent event) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  ThreadBuffer& buffer = local_buffer();
  core::MutexLock lock(buffer.mutex);  // uncontended except during flush
  event.tid = buffer.tid;
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::drain() {
  enabled_.store(false, std::memory_order_relaxed);
  std::vector<TraceEvent> events;
  core::MutexLock lock(mutex_);
  for (const auto& buffer : buffers_) {
    core::MutexLock buffer_lock(buffer->mutex);
    events.insert(events.end(), std::make_move_iterator(buffer->events.begin()),
                  std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
  }
  // Deterministic file bytes for a given set of recorded spans: order by
  // time, then thread, then name — never by drain order.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.ts_micros != b.ts_micros) return a.ts_micros < b.ts_micros;
              if (a.tid != b.tid) return a.tid < b.tid;
              return std::strcmp(a.name, b.name) < 0;
            });
  return events;
}

std::size_t TraceRecorder::event_count() {
  core::MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    core::MutexLock buffer_lock(buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

void TraceRecorder::write_json(std::ostream& out) {
  const std::vector<TraceEvent> events = drain();
  out << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out << (first ? "\n" : ",\n");
    out << "{\"name\": \"" << json_escape(e.name)
        << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
        << ", \"ts\": " << e.ts_micros << ", \"dur\": " << e.dur_micros;
    if (!e.args.empty()) {
      out << ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) out << ", ";
        out << "\"" << json_escape(key) << "\": \"" << json_escape(value) << "\"";
        first_arg = false;
      }
      out << "}";
    }
    out << "}";
    first = false;
  }
  out << (first ? "]" : "\n]") << ", \"displayTimeUnit\": \"ms\"}\n";
}

bool TraceRecorder::flush() {
  std::string path;
  {
    core::MutexLock lock(mutex_);
    path = path_;
  }
  std::ofstream out(path);
  if (!out) {
    // Last-resort diagnostic on the process-exit dump path; there is no
    // caller left to return a Status to. tdc-lint: allow(iostream-print)
    std::fprintf(stderr, "trace: cannot write %s\n", path.c_str());
    return false;
  }
  write_json(out);
  return static_cast<bool>(out);
}

}  // namespace tdc::obs
