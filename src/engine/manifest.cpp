#include "engine/manifest.h"

#include <fstream>
#include <set>
#include <sstream>

#include "codec/select.h"

namespace tdc::engine {

namespace {

Error manifest_error(std::size_t line_no, const std::string& message) {
  Error e;
  e.kind = ErrorKind::ConfigMismatch;
  e.message = "manifest line " + std::to_string(line_no) + ": " + message;
  return e;
}

/// Joins a possibly relative path onto a base directory.
std::string resolve(const std::string& base_dir, const std::string& path) {
  if (base_dir.empty() || path.empty() || path.front() == '/') return path;
  return base_dir + "/" + path;
}

bool parse_u64(const std::string& raw, std::uint64_t* out) {
  try {
    std::size_t used = 0;
    const unsigned long long parsed = std::stoull(raw, &used);
    if (used != raw.size()) return false;
    *out = parsed;
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

const char* tiebreak_name(lzw::Tiebreak tiebreak) {
  switch (tiebreak) {
    case lzw::Tiebreak::First: return "first";
    case lzw::Tiebreak::LowestChar: return "lowestchar";
    case lzw::Tiebreak::MostRecent: return "mostrecent";
    case lzw::Tiebreak::MostChildren: return "mostchildren";
    case lzw::Tiebreak::Lookahead: return "lookahead";
  }
  return "?";
}

const char* xassign_name(lzw::XAssignMode mode) {
  switch (mode) {
    case lzw::XAssignMode::Dynamic: return "dynamic";
    case lzw::XAssignMode::ZeroFill: return "zero";
    case lzw::XAssignMode::OneFill: return "one";
    case lzw::XAssignMode::RepeatFill: return "repeat";
    case lzw::XAssignMode::RandomFill: return "random";
  }
  return "?";
}

Result<lzw::Tiebreak> parse_tiebreak(const std::string& name) {
  for (const auto t : {lzw::Tiebreak::First, lzw::Tiebreak::LowestChar,
                       lzw::Tiebreak::MostRecent, lzw::Tiebreak::MostChildren,
                       lzw::Tiebreak::Lookahead}) {
    if (name == tiebreak_name(t)) return t;
  }
  Error e;
  e.kind = ErrorKind::ConfigMismatch;
  e.message = "unknown tiebreak '" + name + "'";
  return e;
}

Result<lzw::XAssignMode> parse_xassign(const std::string& name) {
  for (const auto m : {lzw::XAssignMode::Dynamic, lzw::XAssignMode::ZeroFill,
                       lzw::XAssignMode::OneFill, lzw::XAssignMode::RepeatFill,
                       lzw::XAssignMode::RandomFill}) {
    if (name == xassign_name(m)) return m;
  }
  Error e;
  e.kind = ErrorKind::ConfigMismatch;
  e.message = "unknown xassign mode '" + name + "'";
  return e;
}

Result<Manifest> parse_manifest(std::istream& in, const std::string& base_dir) {
  Manifest manifest;
  std::set<std::string> names;
  std::string line;
  std::size_t line_no = 0;
  bool version_seen = false;

  while (std::getline(in, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string head;
    if (!(tokens >> head) || head.front() == '#') continue;

    if (head == "version") {
      std::string v;
      if (!(tokens >> v) || v != "1") {
        return manifest_error(line_no, "unsupported manifest version");
      }
      version_seen = true;
      continue;
    }
    if (head != "job") {
      return manifest_error(line_no, "expected 'job', 'version' or a comment, got '" + head + "'");
    }
    (void)version_seen;  // optional header; accepted anywhere before/between jobs

    JobSpec spec;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        if (token == "variable") {
          spec.config.variable_width = true;
          continue;
        }
        return manifest_error(line_no, "unknown token '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (value.empty()) return manifest_error(line_no, "empty value for '" + key + "'");

      std::uint64_t n = 0;
      if (key == "name") {
        spec.name = value;
      } else if (key == "input") {
        spec.input_path = resolve(base_dir, value);
      } else if (key == "gen") {
        spec.gen_circuit = value;
      } else if (key == "out") {
        spec.output_path = value;
      } else if (key == "dict") {
        if (!parse_u64(value, &n)) return manifest_error(line_no, "bad dict '" + value + "'");
        spec.config.dict_size = static_cast<std::uint32_t>(n);
      } else if (key == "char") {
        if (!parse_u64(value, &n)) return manifest_error(line_no, "bad char '" + value + "'");
        spec.config.char_bits = static_cast<std::uint32_t>(n);
      } else if (key == "entry") {
        if (!parse_u64(value, &n)) return manifest_error(line_no, "bad entry '" + value + "'");
        spec.config.entry_bits = static_cast<std::uint32_t>(n);
      } else if (key == "tiebreak") {
        Result<lzw::Tiebreak> t = parse_tiebreak(value);
        if (!t.ok()) return manifest_error(line_no, t.error().message);
        spec.tiebreak = t.value();
      } else if (key == "xassign") {
        Result<lzw::XAssignMode> m = parse_xassign(value);
        if (!m.ok()) return manifest_error(line_no, m.error().message);
        spec.xassign = m.value();
      } else if (key == "seed") {
        if (!parse_u64(value, &n)) return manifest_error(line_no, "bad seed '" + value + "'");
        spec.rng_seed = n;
      } else if (key == "container") {
        if (!parse_u64(value, &n) || (n != 1 && n != 2)) {
          return manifest_error(line_no, "container must be 1 or 2");
        }
        spec.container.version = static_cast<std::uint32_t>(n);
      } else if (key == "chunk") {
        if (!parse_u64(value, &n)) return manifest_error(line_no, "bad chunk '" + value + "'");
        spec.container.chunk_bytes = static_cast<std::uint32_t>(n);
      } else if (key == "codec") {
        Result<codec::SelectOptions> mode = codec::parse_codec_mode(value);
        if (!mode.ok()) return manifest_error(line_no, mode.error().message);
        spec.codec = value;
      } else if (key == "chunk_trits") {
        if (!parse_u64(value, &n) || n == 0 || n > codec::kMaxChunkTrits) {
          return manifest_error(line_no,
                                "chunk_trits must be in [1, 2^30], got '" + value + "'");
        }
        spec.chunk_trits = static_cast<std::uint32_t>(n);
      } else {
        return manifest_error(line_no, "unknown key '" + key + "'");
      }
    }

    // --- per-job validation: the pipeline only sees runnable specs.
    const int sources = (!spec.input_path.empty() ? 1 : 0) +
                        (!spec.gen_circuit.empty() ? 1 : 0) +
                        (spec.inline_tests ? 1 : 0);
    if (sources != 1) {
      return manifest_error(line_no, "job needs exactly one of input=/gen=");
    }
    if (const std::string why = spec.config.check(); !why.empty()) {
      return manifest_error(line_no, why);
    }
    if (spec.container.chunk_bytes != 0 && spec.container.chunk_bytes < 64) {
      return manifest_error(line_no, "chunk must be 0 or >= 64");
    }
    if (spec.codec.empty()) {
      if (spec.chunk_trits != 0) {
        return manifest_error(line_no, "chunk_trits needs codec=");
      }
    } else {
      // codec= routes through per-chunk selection and the v3 container; the
      // selection path assigns don't-cares inside each backend, so the
      // whole-buffer xassign modes and the v1/v2 container knobs don't apply.
      if (spec.xassign != lzw::XAssignMode::Dynamic) {
        return manifest_error(line_no, "codec= jobs require xassign=dynamic");
      }
      const lzw::ContainerOptions defaults;
      if (spec.container.version != defaults.version ||
          spec.container.chunk_bytes != defaults.chunk_bytes) {
        return manifest_error(line_no,
                              "codec= jobs write a v3 container; drop container=/chunk=");
      }
    }
    if (spec.name.empty()) {
      spec.name = "job" + std::to_string(manifest.jobs.size());
    }
    if (!names.insert(spec.name).second) {
      return manifest_error(line_no, "duplicate job name '" + spec.name + "'");
    }
    manifest.jobs.push_back(std::move(spec));
  }
  return manifest;
}

Result<Manifest> load_manifest(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    Error e;
    e.kind = ErrorKind::IoError;
    e.message = "cannot open manifest " + path;
    return e;
  }
  const std::size_t slash = path.rfind('/');
  const std::string base_dir = slash == std::string::npos ? "" : path.substr(0, slash);
  return parse_manifest(in, base_dir);
}

}  // namespace tdc::engine
