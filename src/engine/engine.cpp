#include "engine/engine.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "codec/select.h"
#include "exp/bounded_queue.h"
#include "exp/flow.h"
#include "exp/table.h"
#include "exp/thread_pool.h"
#include "lzw/stream_io.h"
#include "lzw/verify.h"
#include "obs/trace.h"
#include "scan/testset_io.h"

namespace tdc::engine {

namespace {

/// One job in flight: the spec plus whatever earlier stages produced.
struct Job {
  std::size_t index = 0;
  const JobSpec* spec = nullptr;
  bits::TritVector stream;        // load
  lzw::EncodeResult encoded;      // encode, legacy whole-buffer LZW
  codec::EncodedChunks chunks;    // encode, codec= per-chunk selection
  std::string container;          // containerize
  JobOutcome outcome;
  bool failed = false;

  bool multi_codec() const { return !spec->codec.empty(); }
};

using JobPtr = std::unique_ptr<Job>;
using JobQueue = exp::BoundedQueue<JobPtr>;

/// Pre-resolved per-stage instruments, so stage workers never touch the
/// registry's name map on the hot path. bits_in/bits_out are only wired for
/// the encode stage.
struct StageMetrics {
  Counter* in;
  Counter* ok;
  Counter* fail;
  Counter* skip;
  Histogram* micros;
  Counter* flushes;  ///< shard publications — the registry-lock traffic proxy
  Counter* bits_in = nullptr;
  Counter* bits_out = nullptr;
};

StageMetrics make_stage_metrics(MetricsRegistry& m, const std::string& stage) {
  return StageMetrics{&m.counter(stage + ".in"),      &m.counter(stage + ".ok"),
                      &m.counter(stage + ".fail"),    &m.counter(stage + ".skip"),
                      &m.histogram(stage + ".micros"), &m.counter(stage + ".flushes")};
}

/// Per-worker metrics shard: plain integers plus an unsynchronized
/// histogram, owned by one stage thread. Workers record every sample here
/// and publish via flush_shard() — once at thread exit in the sharded
/// discipline (a handful of atomic adds and one histogram lock per worker
/// per run), or after every job in the contention-baseline discipline
/// (reproducing the pre-PR per-job lock cadence for the bench).
struct StageShard {
  std::uint64_t in = 0;
  std::uint64_t ok = 0;
  std::uint64_t fail = 0;
  std::uint64_t skip = 0;
  std::uint64_t bits_in = 0;
  std::uint64_t bits_out = 0;
  LocalHistogram micros;
};

void flush_shard(const StageMetrics& sm, StageShard& shard) {
  if (shard.in == 0 && shard.skip == 0 && shard.micros.snapshot().count == 0) {
    return;  // nothing recorded since the last flush — no lock traffic
  }
  sm.flushes->add();
  if (shard.in != 0) sm.in->add(shard.in);
  if (shard.ok != 0) sm.ok->add(shard.ok);
  if (shard.fail != 0) sm.fail->add(shard.fail);
  if (shard.skip != 0) sm.skip->add(shard.skip);
  if (shard.bits_in != 0 && sm.bits_in != nullptr) sm.bits_in->add(shard.bits_in);
  if (shard.bits_out != 0 && sm.bits_out != nullptr) {
    sm.bits_out->add(shard.bits_out);
  }
  if (shard.micros.snapshot().count != 0) sm.micros->merge(shard.micros.snapshot());
  shard = StageShard{};
}

Error typed_error(ErrorKind kind, std::string message) {
  Error e;
  e.kind = kind;
  e.message = std::move(message);
  return e;
}

/// Runs a stage body with exception → typed-Error mapping: TdcErrorBase
/// keeps its typed error, std::invalid_argument means a configuration /
/// semantic problem, anything else an I/O-level failure.
template <typename Fn>
Status guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const TdcErrorBase& e) {
    return e.error();
  } catch (const std::invalid_argument& e) {
    return typed_error(ErrorKind::ConfigMismatch, e.what());
  } catch (const std::exception& e) {
    return typed_error(ErrorKind::IoError, e.what());
  }
}

std::string resolve_output(const std::string& output_dir, const std::string& path) {
  if (path.empty() || output_dir.empty() || path.front() == '/') return path;
  return output_dir + "/" + path;
}

/// Seeds the outcome's identity fields from the spec — shared by the batch
/// feeder and the JobRunner submission path so reports describe jobs
/// identically whichever front end ran them.
void init_outcome(Job& job) {
  const JobSpec& spec = *job.spec;
  job.outcome.name = spec.name;
  job.outcome.config_summary =
      spec.config.describe() + (spec.config.variable_width ? " var" : "") +
      " " + tiebreak_name(spec.tiebreak) + "/" + xassign_name(spec.xassign);
  if (!spec.codec.empty()) {
    job.outcome.config_summary += " codec=" + spec.codec;
  }
  job.outcome.container_version = spec.codec.empty() ? spec.container.version : 3;
}

}  // namespace

// ---------------------------------------------------------------- BatchResult

std::size_t BatchResult::ok_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.ok() ? 1 : 0;
  return n;
}

std::size_t BatchResult::failed_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += (!j.status.ok() && !j.cancelled) ? 1 : 0;
  return n;
}

std::size_t BatchResult::cancelled_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.cancelled ? 1 : 0;
  return n;
}

std::string BatchResult::report() const {
  exp::Table table({"Job", "Config", "Cont", "Orig", "Comp", "Ratio", "Status"});
  for (const JobOutcome& j : jobs) {
    std::string status = "ok";
    if (j.cancelled) {
      status = "cancelled";
    } else if (!j.status.ok()) {
      status = std::string("FAILED ") + to_string(j.status.error().kind);
    }
    table.add_row({j.name, j.config_summary,
                   "v" + std::to_string(j.container_version),
                   j.ok() ? exp::num(j.original_bits) : "-",
                   j.ok() ? exp::num(j.compressed_bits) : "-",
                   j.ok() ? exp::pct(j.ratio_percent) : "-", status});
  }
  return table.render();
}

// --------------------------------------------------------------------- Engine

namespace {

/// gen= inputs shared by several jobs are prepared exactly once; later
/// jobs block on the shared future (a failed prepare fails each of them).
/// Owned per batch run by RunState and per JobRunner for its lifetime.
struct GenMemo {
  core::Mutex mutex;
  std::map<std::string, std::shared_future<std::shared_ptr<const bits::TritVector>>>
      memo TDC_GUARDED_BY(mutex);
};

/// Per-run shared state: queues, the prepared-circuit memo and the
/// fail-fast cancellation flag.
struct RunState {
  RunState(std::size_t capacity, bool eager_notify)
      : to_load(capacity, eager_notify), to_encode(capacity, eager_notify),
        to_container(capacity, eager_notify), to_verify(capacity, eager_notify),
        done(capacity, eager_notify) {}

  JobQueue to_load, to_encode, to_container, to_verify, done;
  // tdc-sync: advisory fail-fast flag; relaxed on both sides — stages only
  // skip work they would otherwise do, no data is published through it.
  std::atomic<bool> cancelled{false};
  GenMemo gen;
};

}  // namespace

Engine::Engine(EngineOptions options, MetricsRegistry* metrics)
    : options_(std::move(options)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = metrics;
  }
}

Engine::~Engine() = default;

namespace {

Status stage_load(GenMemo& gen, Job& job) {
  const JobSpec& spec = *job.spec;
  if (spec.inline_tests) {
    job.stream = spec.inline_tests->serialize();
    return {};
  }
  if (!spec.input_path.empty()) {
    return guarded([&]() -> Status {
      job.stream = scan::read_tests_file(spec.input_path).serialize();
      return {};
    });
  }
  // gen= source: memoized exp::prepare so concurrent jobs over the same
  // circuit never race on the ATPG disk cache.
  using StreamPtr = std::shared_ptr<const bits::TritVector>;
  std::shared_future<StreamPtr> future;
  std::promise<StreamPtr> promise;
  bool creator = false;
  {
    core::MutexLock lock(gen.mutex);
    auto it = gen.memo.find(spec.gen_circuit);
    if (it == gen.memo.end()) {
      future = promise.get_future().share();
      gen.memo.emplace(spec.gen_circuit, future);
      creator = true;
    } else {
      future = it->second;
    }
  }
  if (creator) {
    try {
      promise.set_value(std::make_shared<const bits::TritVector>(
          exp::prepare(spec.gen_circuit).tests.serialize()));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return guarded([&]() -> Status {
    job.stream = *future.get();
    return {};
  });
}

Status stage_encode(Job& job, MetricsRegistry& metrics) {
  const JobSpec& spec = *job.spec;
  if (job.multi_codec()) {
    // Per-chunk codec selection. The reported compressed_bits stay in the
    // paper's accounting (tester stream only), the same metric the legacy
    // path reports, so mixed-codec and pure-LZW rows compare directly.
    Result<codec::SelectOptions> mode = codec::parse_codec_mode(spec.codec);
    if (!mode.ok()) return mode.error();
    codec::SelectOptions options = std::move(mode).take();
    options.lzw = spec.config;
    options.tiebreak = spec.tiebreak;
    if (spec.chunk_trits != 0) options.chunk_trits = spec.chunk_trits;
    Result<codec::EncodedChunks> chunks =
        codec::encode_chunks(job.stream, options, &metrics);
    if (!chunks.ok()) return chunks.error();
    job.chunks = std::move(chunks).take();
    job.outcome.original_bits = job.chunks.original_bits;
    job.outcome.compressed_bits = job.chunks.stats_bits;
    job.outcome.ratio_percent = codec::ratio_percent(job.chunks.original_bits,
                                                     job.chunks.stats_bits);
    return {};
  }
  return guarded([&]() -> Status {
    const lzw::Encoder encoder(spec.config, spec.tiebreak);
    job.encoded = encoder.encode(job.stream, spec.xassign, spec.rng_seed);
    job.outcome.original_bits = job.encoded.original_bits;
    job.outcome.compressed_bits = job.encoded.compressed_bits();
    job.outcome.ratio_percent = job.encoded.ratio_percent();
    return {};
  });
}

Status stage_container(Job& job) {
  const JobSpec& spec = *job.spec;
  return guarded([&]() -> Status {
    std::ostringstream out;
    if (job.multi_codec()) {
      const std::uint32_t chunk_trits =
          spec.chunk_trits != 0 ? spec.chunk_trits : codec::kDefaultChunkTrits;
      lzw::write_image_v3(out, spec.config, job.chunks.original_bits,
                          chunk_trits, job.chunks.records);
    } else {
      lzw::write_image(out, job.encoded, spec.container);
    }
    job.container = std::move(out).str();
    job.outcome.container_bytes = job.container.size();
    return {};
  });
}

Status stage_verify(Job& job) {
  // End-to-end check of what was actually containerized: read the bytes
  // back, decode, and prove the expansion covers every care bit of the
  // input — the invariant the whole repository is built around.
  std::istringstream in(job.container);
  Result<lzw::CompressedImage> image = lzw::try_read_image(in);
  if (!image.ok()) return image.error();
  // codec::decode_image routes v1/v2 through the LZW image decoder and v3
  // through the codec registry, so one verify covers both container paths.
  Result<bits::TritVector> decoded = codec::decode_image(image.value());
  if (!decoded.ok()) return decoded.error();
  if (decoded.value().size() != job.stream.size()) {
    return typed_error(ErrorKind::StreamTooShort,
                       "decoded stream length mismatch");
  }
  if (!job.stream.covered_by(decoded.value())) {
    return typed_error(ErrorKind::ConfigMismatch,
                       "decoded stream does not cover the input care bits");
  }
  return {};
}

}  // namespace

BatchResult Engine::run(const Manifest& manifest, const CommitCallback& on_commit) {
  const unsigned workers =
      options_.workers != 0 ? options_.workers : exp::ThreadPool::default_jobs();
  const std::size_t capacity =
      options_.queue_capacity != 0
          ? options_.queue_capacity
          : std::max<std::size_t>(2 * static_cast<std::size_t>(workers), 4);

  obs::TraceSpan run_span("engine.run");
  run_span.arg("jobs", static_cast<std::uint64_t>(manifest.jobs.size()));
  run_span.arg("workers", static_cast<std::uint64_t>(workers));

  const bool baseline = options_.contention_baseline;
  // Batch granularity for queue transfers: small enough to keep the
  // pipeline's hand-off latency low, large enough that a busy stage pays
  // one lock round-trip for several jobs.
  const std::size_t stage_batch = baseline ? 1 : 4;

  RunState run(capacity, baseline);
  MetricsRegistry& m = *metrics_;
  const StageMetrics load_m = make_stage_metrics(m, "load");
  StageMetrics encode_m = make_stage_metrics(m, "encode");
  encode_m.bits_in = &m.counter("encode.bits_in");
  encode_m.bits_out = &m.counter("encode.bits_out");
  const StageMetrics container_m = make_stage_metrics(m, "container");
  const StageMetrics verify_m = make_stage_metrics(m, "verify");
  const StageMetrics commit_m = make_stage_metrics(m, "commit");
  Counter& bytes_written = m.counter("commit.bytes_written");
  m.counter("engine.jobs").add(manifest.jobs.size());
  m.counter("engine.runs").add();

  const bool fail_fast = options_.fail_fast;
  const bool do_verify = options_.verify;

  // One stage execution: skip failed/cancelled jobs, time the body (into the
  // worker's unsynchronized shard, plus a trace span carrying the job name),
  // map the result onto the job and the shard.
  const auto process = [&run, fail_fast](StageShard& shard,
                                         const char* span_name, Job& job,
                                         const std::function<Status(Job&)>& body) {
    ++shard.in;
    if (!job.failed && run.cancelled.load(std::memory_order_relaxed) &&
        !job.outcome.cancelled) {
      job.outcome.cancelled = true;
    }
    if (job.failed || job.outcome.cancelled) {
      ++shard.skip;
      return;
    }
    Status status;
    {
      obs::TraceSpan span(span_name);
      span.arg("job", job.outcome.name);
      const auto start = std::chrono::steady_clock::now();
      status = body(job);
      shard.micros.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    }
    if (status.ok()) {
      ++shard.ok;
      return;
    }
    job.failed = true;
    job.outcome.status = status;
    ++shard.fail;
    if (fail_fast) run.cancelled.store(true, std::memory_order_relaxed);
  };

  // A stage: `workers` threads popping `in`, processing, pushing `out`.
  // Each worker drains its input up to `stage_batch` jobs per lock
  // round-trip (pop_up_to) and forwards them the same way (push_all), and
  // owns a StageShard merged into the registry at exit. The last worker out
  // closes the downstream queue, so shutdown cascades from the feeder to
  // the committer with no central coordinator.
  struct Stage {
    std::vector<std::thread> threads;
    // tdc-sync: last-worker-out election; acq_rel on the decrement makes
    // every worker's queue writes visible to whichever thread closes `out`.
    std::shared_ptr<std::atomic<int>> remaining;
  };
  const auto spawn_stage = [&](JobQueue& in, JobQueue& out,
                               std::function<void(Job&, StageShard&)> work,
                               const StageMetrics& sm) {
    Stage stage;
    stage.remaining = std::make_shared<std::atomic<int>>(static_cast<int>(workers));
    for (unsigned t = 0; t < workers; ++t) {
      stage.threads.emplace_back([&in, &out, work, sm, baseline, stage_batch,
                                  remaining = stage.remaining] {
        StageShard shard;
        if (baseline) {
          // Pre-PR discipline: one job per queue round-trip, every sample
          // flushed to the shared registry immediately.
          while (auto item = in.pop()) {
            JobPtr job = std::move(*item);
            work(*job, shard);
            flush_shard(sm, shard);
            out.push(std::move(job));
          }
        } else {
          std::vector<JobPtr> jobs;
          jobs.reserve(stage_batch);
          while (in.pop_up_to(stage_batch, jobs) > 0) {
            for (JobPtr& job : jobs) work(*job, shard);
            out.push_all(std::move(jobs));
            jobs.clear();
          }
        }
        flush_shard(sm, shard);
        if (remaining->fetch_sub(1, std::memory_order_acq_rel) == 1) {
          out.close();
        }
      });
    }
    return stage;
  };

  const auto started = std::chrono::steady_clock::now();

  std::vector<Stage> stages;
  stages.push_back(spawn_stage(
      run.to_load, run.to_encode,
      [&](Job& job, StageShard& shard) {
        process(shard, "engine.load", job,
                [&run](Job& j) { return stage_load(run.gen, j); });
      },
      load_m));
  stages.push_back(spawn_stage(
      run.to_encode, run.to_container,
      [&](Job& job, StageShard& shard) {
        process(shard, "engine.encode", job, [&shard, &m](Job& j) {
          const Status status = stage_encode(j, m);
          if (status.ok()) {
            shard.bits_in += j.outcome.original_bits;
            shard.bits_out += j.outcome.compressed_bits;
          }
          return status;
        });
      },
      encode_m));
  stages.push_back(spawn_stage(
      run.to_container, run.to_verify,
      [&](Job& job, StageShard& shard) {
        process(shard, "engine.container", job,
                [](Job& j) { return stage_container(j); });
      },
      container_m));
  stages.push_back(spawn_stage(
      run.to_verify, run.done,
      [&](Job& job, StageShard& shard) {
        if (!do_verify) return;  // stage disabled: pass through untouched
        process(shard, "engine.verify", job,
                [](Job& j) { return stage_verify(j); });
      },
      verify_m));

  // Feeder: materializes jobs into the first queue. Must be its own thread —
  // the main thread commits, and a blocked committer must never block feeding
  // (bounded queues + a single thread doing both would deadlock).
  std::thread feeder([&manifest, &run, this, baseline, stage_batch] {
    std::vector<JobPtr> pending_feed;
    for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
      auto job = std::make_unique<Job>();
      job->index = i;
      job->spec = &manifest.jobs[i];
      init_outcome(*job);
      job->outcome.output_path =
          resolve_output(options_.output_dir, job->spec->output_path);
      if (baseline) {
        run.to_load.push(std::move(job));
      } else {
        pending_feed.push_back(std::move(job));
        if (pending_feed.size() >= stage_batch) {
          run.to_load.push_all(std::move(pending_feed));
          pending_feed.clear();
        }
      }
    }
    if (!pending_feed.empty()) run.to_load.push_all(std::move(pending_feed));
    run.to_load.close();
  });

  // Committer (this thread): commits — output-file write, callback, result
  // slot — strictly in manifest order. The reorder buffer is a plain slot
  // vector indexed by job index: an arrival is one pointer store, and an
  // in-order arrival commits immediately with no ordered-map rebalancing or
  // lookup — wait-free for the common case where the pipeline largely
  // preserves order.
  BatchResult result;
  result.jobs.resize(manifest.jobs.size());
  std::vector<JobPtr> slots(manifest.jobs.size());
  std::size_t next = 0;
  StageShard commit_shard;
  const auto commit = [&](JobPtr job) {
    ++commit_shard.in;
    if (job->failed || job->outcome.cancelled) {
      ++commit_shard.skip;
    } else if (!job->outcome.output_path.empty()) {
      Status status;
      {
        obs::TraceSpan span("engine.commit");
        span.arg("job", job->outcome.name);
        const auto start = std::chrono::steady_clock::now();
        status = guarded([&]() -> Status {
          const std::filesystem::path target(job->outcome.output_path);
          if (target.has_parent_path()) {
            std::filesystem::create_directories(target.parent_path());
          }
          std::ofstream out(job->outcome.output_path, std::ios::binary);
          if (!out.write(job->container.data(),
                         static_cast<std::streamsize>(job->container.size()))) {
            return typed_error(ErrorKind::IoError, "cannot write " +
                                                       job->outcome.output_path);
          }
          return {};
        });
        commit_shard.micros.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
      }
      if (status.ok()) {
        bytes_written.add(job->container.size());
        job->container.clear();  // on disk now; don't hold the bytes twice
        ++commit_shard.ok;
      } else {
        job->failed = true;
        job->outcome.status = status;
        ++commit_shard.fail;
        if (fail_fast) run.cancelled.store(true, std::memory_order_relaxed);
      }
    } else {
      ++commit_shard.ok;
    }
    job->outcome.container = std::move(job->container);
    if (on_commit) on_commit(job->outcome);
    result.jobs[job->index] = std::move(job->outcome);
    if (baseline) flush_shard(commit_m, commit_shard);
  };
  const auto settle = [&](JobPtr job) {
    slots[job->index] = std::move(job);
    while (next < slots.size() && slots[next] != nullptr) {
      commit(std::move(slots[next]));
      ++next;
    }
  };
  if (baseline) {
    while (auto item = run.done.pop()) settle(std::move(*item));
  } else {
    std::vector<JobPtr> arrivals;
    arrivals.reserve(stage_batch);
    while (run.done.pop_up_to(stage_batch, arrivals) > 0) {
      for (JobPtr& job : arrivals) settle(std::move(job));
      arrivals.clear();
    }
  }
  flush_shard(commit_m, commit_shard);

  feeder.join();
  for (Stage& stage : stages) {
    for (std::thread& t : stage.threads) t.join();
  }

  // Publish each queue's contention counters and roll the totals into the
  // run trace span — the evidence surface for the wakeup/sharding work (the
  // engine bench reads these same numbers into BENCH_engine_throughput.json).
  exp::BoundedQueueStats totals;
  const auto export_queue = [&m, &totals](const char* qname, const JobQueue& q) {
    const exp::BoundedQueueStats s = q.stats();
    add_queue_stats(m, qname, s);
    totals.pushes += s.pushes;
    totals.pops += s.pops;
    totals.push_blocked += s.push_blocked;
    totals.pop_blocked += s.pop_blocked;
    totals.push_blocked_micros += s.push_blocked_micros;
    totals.pop_blocked_micros += s.pop_blocked_micros;
    totals.notifies_sent += s.notifies_sent;
    totals.notifies_skipped += s.notifies_skipped;
  };
  export_queue("load", run.to_load);
  export_queue("encode", run.to_encode);
  export_queue("container", run.to_container);
  export_queue("verify", run.to_verify);
  export_queue("done", run.done);
  run_span.arg("queue_blocked", totals.push_blocked + totals.pop_blocked);
  run_span.arg("queue_blocked_micros", totals.blocked_micros());
  run_span.arg("queue_notifies_sent", totals.notifies_sent);
  run_span.arg("queue_notifies_skipped", totals.notifies_skipped);

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  m.counter("engine.ok").add(result.ok_count());
  m.counter("engine.failed").add(result.failed_count());
  m.counter("engine.cancelled").add(result.cancelled_count());
  return result;
}

void add_queue_stats(MetricsRegistry& m, const std::string& name,
                     const exp::BoundedQueueStats& s) {
  const std::string prefix = "queue." + name + ".";
  m.counter(prefix + "pushes").add(s.pushes);
  m.counter(prefix + "pops").add(s.pops);
  m.counter(prefix + "batch_pushes").add(s.batch_pushes);
  m.counter(prefix + "batch_pops").add(s.batch_pops);
  m.counter(prefix + "push_blocked").add(s.push_blocked);
  m.counter(prefix + "pop_blocked").add(s.pop_blocked);
  m.counter(prefix + "push_blocked_micros").add(s.push_blocked_micros);
  m.counter(prefix + "pop_blocked_micros").add(s.pop_blocked_micros);
  m.counter(prefix + "notifies_sent").add(s.notifies_sent);
  m.counter(prefix + "notifies_skipped").add(s.notifies_skipped);
  // Occupancy is a level, not an event stream: the gauge is set to the
  // depth this snapshot saw (0 once a run or drain finished) while the
  // queue's own lifetime max folds into the gauge's high-watermark.
  obs::Gauge& depth = m.gauge(prefix + "depth");
  depth.set(static_cast<std::int64_t>(s.depth));
  depth.record_peak(static_cast<std::int64_t>(s.max_depth));
}

// ------------------------------------------------------------------ JobRunner

/// One queued submission: either a full compression job (spec + done
/// callback) or a raw closure from the service's decode-side endpoints.
struct JobRunner::Item {
  JobSpec spec;
  DoneCallback done;
  std::function<void()> task;  ///< when set, spec/done are unused
};

/// Pre-resolved instruments plus the gen= memo — everything the worker loop
/// touches besides the queue.
struct JobRunner::RunnerState {
  explicit RunnerState(MetricsRegistry& m)
      : load(make_stage_metrics(m, "load")),
        encode(make_stage_metrics(m, "encode")),
        container(make_stage_metrics(m, "container")),
        verify(make_stage_metrics(m, "verify")),
        jobs(&m.counter("runner.jobs")), tasks(&m.counter("runner.tasks")),
        ok(&m.counter("runner.ok")), failed(&m.counter("runner.failed")),
        busy_rejects(&m.counter("runner.busy_rejects")),
        in_flight(&m.gauge("runner.in_flight")) {
    encode.bits_in = &m.counter("encode.bits_in");
    encode.bits_out = &m.counter("encode.bits_out");
  }

  StageMetrics load, encode, container, verify;
  Counter* jobs;
  Counter* tasks;
  Counter* ok;
  Counter* failed;
  Counter* busy_rejects;
  obs::Gauge* in_flight;  ///< live queued+running level; peak = worst burst
  GenMemo gen;
};

namespace {

/// One stage of a runner job, recorded straight into the shared instruments
/// (per-request cadence — a stats endpoint must see the numbers live, and a
/// few atomic adds per request are noise next to the socket round trip).
void run_runner_stage(const StageMetrics& sm, const char* span_name, Job& job,
                      const std::function<Status(Job&)>& body) {
  sm.in->add();
  if (job.failed) {
    sm.skip->add();
    return;
  }
  Status status;
  {
    obs::TraceSpan span(span_name);
    span.arg("job", job.outcome.name);
    if (!job.spec->trace.empty()) span.arg("trace", job.spec->trace);
    const auto start = std::chrono::steady_clock::now();
    status = body(job);
    sm.micros->record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count()));
  }
  if (status.ok()) {
    sm.ok->add();
    return;
  }
  job.failed = true;
  job.outcome.status = status;
  sm.fail->add();
}

}  // namespace

JobRunner::JobRunner(Options options, MetricsRegistry* metrics)
    : options_(options) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = metrics;
  }
  if (options_.workers == 0) options_.workers = exp::ThreadPool::default_jobs();
  if (options_.max_in_flight == 0) {
    options_.max_in_flight = 2 * static_cast<std::size_t>(options_.workers);
  }
  state_ = std::make_unique<RunnerState>(*metrics_);
  // Queue capacity = the in-flight cap: with admissions counted before the
  // push, a submit never blocks on queue space.
  queue_ = std::make_unique<exp::BoundedQueue<std::unique_ptr<Item>>>(
      options_.max_in_flight);
  workers_.reserve(options_.workers);
  for (unsigned t = 0; t < options_.workers; ++t) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

JobRunner::~JobRunner() { stop(); }

void JobRunner::worker_loop() {
  while (auto item = queue_->pop()) {
    std::unique_ptr<Item> work = std::move(*item);
    if (work->task) {
      state_->tasks->add();
      obs::TraceSpan span("runner.task");
      work->task();
    } else {
      state_->jobs->add();
      Job job;
      job.spec = &work->spec;
      init_outcome(job);
      run_runner_stage(state_->load, "engine.load", job, [this](Job& j) {
        return stage_load(state_->gen, j);
      });
      run_runner_stage(state_->encode, "engine.encode", job, [this](Job& j) {
        const Status status = stage_encode(j, *metrics_);
        if (status.ok()) {
          state_->encode.bits_in->add(j.outcome.original_bits);
          state_->encode.bits_out->add(j.outcome.compressed_bits);
        }
        return status;
      });
      run_runner_stage(state_->container, "engine.container", job,
                       [](Job& j) { return stage_container(j); });
      if (options_.verify) {
        run_runner_stage(state_->verify, "engine.verify", job,
                         [](Job& j) { return stage_verify(j); });
      }
      (job.failed ? state_->failed : state_->ok)->add();
      job.outcome.container = std::move(job.container);
      if (work->done) work->done(std::move(job.outcome));
    }
    {
      core::MutexLock lock(mutex_);
      --in_flight_;
    }
    state_->in_flight->add(-1);
    idle_.notify_all();
  }
}

bool JobRunner::submit(JobSpec spec, DoneCallback done) {
  auto item = std::make_unique<Item>();
  item->spec = std::move(spec);
  item->done = std::move(done);
  {
    core::MutexLock lock(mutex_);
    if (stopping_ || in_flight_ >= options_.max_in_flight) {
      state_->busy_rejects->add();
      return false;
    }
    ++in_flight_;
  }
  state_->in_flight->add(1);
  queue_->push(std::move(item));
  return true;
}

bool JobRunner::submit_task(std::function<void()> task) {
  auto item = std::make_unique<Item>();
  item->task = std::move(task);
  {
    core::MutexLock lock(mutex_);
    if (stopping_ || in_flight_ >= options_.max_in_flight) {
      state_->busy_rejects->add();
      return false;
    }
    ++in_flight_;
  }
  state_->in_flight->add(1);
  queue_->push(std::move(item));
  return true;
}

std::size_t JobRunner::in_flight() const {
  core::MutexLock lock(mutex_);
  return in_flight_;
}

void JobRunner::drain() {
  core::MutexLock lock(mutex_);
  while (in_flight_ != 0) idle_.wait(lock);
}

void JobRunner::publish_queue_stats() {
  core::MutexLock lock(publish_mutex_);
  const exp::BoundedQueueStats now = queue_->stats();
  exp::BoundedQueueStats delta;
  delta.pushes = now.pushes - published_.pushes;
  delta.pops = now.pops - published_.pops;
  delta.batch_pushes = now.batch_pushes - published_.batch_pushes;
  delta.batch_pops = now.batch_pops - published_.batch_pops;
  delta.push_blocked = now.push_blocked - published_.push_blocked;
  delta.pop_blocked = now.pop_blocked - published_.pop_blocked;
  delta.push_blocked_micros =
      now.push_blocked_micros - published_.push_blocked_micros;
  delta.pop_blocked_micros =
      now.pop_blocked_micros - published_.pop_blocked_micros;
  delta.notifies_sent = now.notifies_sent - published_.notifies_sent;
  delta.notifies_skipped = now.notifies_skipped - published_.notifies_skipped;
  // Occupancy levels pass through untouched — subtracting a previous depth
  // from a current one would be meaningless.
  delta.depth = now.depth;
  delta.max_depth = now.max_depth;
  add_queue_stats(*metrics_, "service", delta);
  published_ = now;
}

exp::BoundedQueueStats JobRunner::queue_stats() const { return queue_->stats(); }

void JobRunner::stop() {
  {
    core::MutexLock lock(mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  // close() lets the workers drain everything already queued, then exit —
  // in-flight jobs complete, new submissions are refused above.
  queue_->close();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

}  // namespace tdc::engine
