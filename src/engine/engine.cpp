#include "engine/engine.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "exp/bounded_queue.h"
#include "exp/flow.h"
#include "exp/table.h"
#include "exp/thread_pool.h"
#include "lzw/stream_io.h"
#include "lzw/verify.h"
#include "obs/trace.h"
#include "scan/testset_io.h"

namespace tdc::engine {

namespace {

/// One job in flight: the spec plus whatever earlier stages produced.
struct Job {
  std::size_t index = 0;
  const JobSpec* spec = nullptr;
  bits::TritVector stream;     // load
  lzw::EncodeResult encoded;   // encode
  std::string container;       // containerize
  JobOutcome outcome;
  bool failed = false;
};

using JobPtr = std::unique_ptr<Job>;
using JobQueue = exp::BoundedQueue<JobPtr>;

/// Pre-resolved per-stage instruments, so stage workers never touch the
/// registry's name map on the hot path.
struct StageMetrics {
  Counter* in;
  Counter* ok;
  Counter* fail;
  Counter* skip;
  Histogram* micros;
};

StageMetrics make_stage_metrics(MetricsRegistry& m, const std::string& stage) {
  return StageMetrics{&m.counter(stage + ".in"), &m.counter(stage + ".ok"),
                      &m.counter(stage + ".fail"), &m.counter(stage + ".skip"),
                      &m.histogram(stage + ".micros")};
}

Error typed_error(ErrorKind kind, std::string message) {
  Error e;
  e.kind = kind;
  e.message = std::move(message);
  return e;
}

/// Runs a stage body with exception → typed-Error mapping: TdcErrorBase
/// keeps its typed error, std::invalid_argument means a configuration /
/// semantic problem, anything else an I/O-level failure.
template <typename Fn>
Status guarded(Fn&& fn) {
  try {
    return fn();
  } catch (const TdcErrorBase& e) {
    return e.error();
  } catch (const std::invalid_argument& e) {
    return typed_error(ErrorKind::ConfigMismatch, e.what());
  } catch (const std::exception& e) {
    return typed_error(ErrorKind::IoError, e.what());
  }
}

std::string resolve_output(const std::string& output_dir, const std::string& path) {
  if (path.empty() || output_dir.empty() || path.front() == '/') return path;
  return output_dir + "/" + path;
}

}  // namespace

// ---------------------------------------------------------------- BatchResult

std::size_t BatchResult::ok_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.ok() ? 1 : 0;
  return n;
}

std::size_t BatchResult::failed_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += (!j.status.ok() && !j.cancelled) ? 1 : 0;
  return n;
}

std::size_t BatchResult::cancelled_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.cancelled ? 1 : 0;
  return n;
}

std::string BatchResult::report() const {
  exp::Table table({"Job", "Config", "Cont", "Orig", "Comp", "Ratio", "Status"});
  for (const JobOutcome& j : jobs) {
    std::string status = "ok";
    if (j.cancelled) {
      status = "cancelled";
    } else if (!j.status.ok()) {
      status = std::string("FAILED ") + to_string(j.status.error().kind);
    }
    table.add_row({j.name, j.config_summary,
                   "v" + std::to_string(j.container_version),
                   j.ok() ? exp::num(j.original_bits) : "-",
                   j.ok() ? exp::num(j.compressed_bits) : "-",
                   j.ok() ? exp::pct(j.ratio_percent) : "-", status});
  }
  return table.render();
}

// --------------------------------------------------------------------- Engine

namespace {

/// Per-run shared state: queues, the prepared-circuit memo and the
/// fail-fast cancellation flag.
struct RunState {
  explicit RunState(std::size_t capacity)
      : to_load(capacity), to_encode(capacity), to_container(capacity),
        to_verify(capacity), done(capacity) {}

  JobQueue to_load, to_encode, to_container, to_verify, done;
  std::atomic<bool> cancelled{false};

  // gen= inputs shared by several jobs are prepared exactly once; later
  // jobs block on the shared future (a failed prepare fails each of them).
  std::mutex gen_mutex;
  std::map<std::string, std::shared_future<std::shared_ptr<const bits::TritVector>>> gen_memo;
};

}  // namespace

Engine::Engine(EngineOptions options, MetricsRegistry* metrics)
    : options_(std::move(options)) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = metrics;
  }
}

Engine::~Engine() = default;

namespace {

Status stage_load(RunState& run, Job& job) {
  const JobSpec& spec = *job.spec;
  if (spec.inline_tests) {
    job.stream = spec.inline_tests->serialize();
    return {};
  }
  if (!spec.input_path.empty()) {
    return guarded([&]() -> Status {
      job.stream = scan::read_tests_file(spec.input_path).serialize();
      return {};
    });
  }
  // gen= source: memoized exp::prepare so concurrent jobs over the same
  // circuit never race on the ATPG disk cache.
  using StreamPtr = std::shared_ptr<const bits::TritVector>;
  std::shared_future<StreamPtr> future;
  std::promise<StreamPtr> promise;
  bool creator = false;
  {
    std::unique_lock lock(run.gen_mutex);
    auto it = run.gen_memo.find(spec.gen_circuit);
    if (it == run.gen_memo.end()) {
      future = promise.get_future().share();
      run.gen_memo.emplace(spec.gen_circuit, future);
      creator = true;
    } else {
      future = it->second;
    }
  }
  if (creator) {
    try {
      promise.set_value(std::make_shared<const bits::TritVector>(
          exp::prepare(spec.gen_circuit).tests.serialize()));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }
  return guarded([&]() -> Status {
    job.stream = *future.get();
    return {};
  });
}

Status stage_encode(Job& job) {
  const JobSpec& spec = *job.spec;
  return guarded([&]() -> Status {
    const lzw::Encoder encoder(spec.config, spec.tiebreak);
    job.encoded = encoder.encode(job.stream, spec.xassign, spec.rng_seed);
    job.outcome.original_bits = job.encoded.original_bits;
    job.outcome.compressed_bits = job.encoded.compressed_bits();
    job.outcome.ratio_percent = job.encoded.ratio_percent();
    return {};
  });
}

Status stage_container(Job& job) {
  const JobSpec& spec = *job.spec;
  return guarded([&]() -> Status {
    std::ostringstream out;
    lzw::write_image(out, job.encoded, spec.container);
    job.container = std::move(out).str();
    job.outcome.container_bytes = job.container.size();
    return {};
  });
}

Status stage_verify(Job& job) {
  // End-to-end check of what was actually containerized: read the bytes
  // back, decode, and prove the expansion covers every care bit of the
  // input — the invariant the whole repository is built around.
  std::istringstream in(job.container);
  Result<lzw::CompressedImage> image = lzw::try_read_image(in);
  if (!image.ok()) return image.error();
  Result<lzw::DecodeResult> decoded = image.value().try_decode();
  if (!decoded.ok()) return decoded.error();
  if (decoded.value().bits.size() != job.stream.size()) {
    return typed_error(ErrorKind::StreamTooShort,
                       "decoded stream length mismatch");
  }
  if (!job.stream.covered_by(decoded.value().bits)) {
    return typed_error(ErrorKind::ConfigMismatch,
                       "decoded stream does not cover the input care bits");
  }
  return {};
}

}  // namespace

BatchResult Engine::run(const Manifest& manifest, const CommitCallback& on_commit) {
  const unsigned workers =
      options_.workers != 0 ? options_.workers : exp::ThreadPool::default_jobs();
  const std::size_t capacity =
      options_.queue_capacity != 0
          ? options_.queue_capacity
          : std::max<std::size_t>(2 * static_cast<std::size_t>(workers), 4);

  obs::TraceSpan run_span("engine.run");
  run_span.arg("jobs", static_cast<std::uint64_t>(manifest.jobs.size()));
  run_span.arg("workers", static_cast<std::uint64_t>(workers));

  RunState run(capacity);
  MetricsRegistry& m = *metrics_;
  const StageMetrics load_m = make_stage_metrics(m, "load");
  const StageMetrics encode_m = make_stage_metrics(m, "encode");
  const StageMetrics container_m = make_stage_metrics(m, "container");
  const StageMetrics verify_m = make_stage_metrics(m, "verify");
  const StageMetrics commit_m = make_stage_metrics(m, "commit");
  Counter& bits_in = m.counter("encode.bits_in");
  Counter& bits_out = m.counter("encode.bits_out");
  Counter& bytes_written = m.counter("commit.bytes_written");
  m.counter("engine.jobs").add(manifest.jobs.size());
  m.counter("engine.runs").add();

  const bool fail_fast = options_.fail_fast;
  const bool do_verify = options_.verify;

  // One stage execution: skip failed/cancelled jobs, time the body (a
  // ScopedTimer for the histogram plus a trace span carrying the job name),
  // map the result onto the job and the stage instruments.
  const auto process = [&run, fail_fast](const StageMetrics& sm,
                                         const char* span_name, Job& job,
                                         const std::function<Status(Job&)>& body) {
    sm.in->add();
    if (!job.failed && run.cancelled.load(std::memory_order_relaxed) &&
        !job.outcome.cancelled) {
      job.outcome.cancelled = true;
    }
    if (job.failed || job.outcome.cancelled) {
      sm.skip->add();
      return;
    }
    Status status;
    {
      obs::TraceSpan span(span_name);
      span.arg("job", job.outcome.name);
      ScopedTimer timer(*sm.micros);
      status = body(job);
    }
    if (status.ok()) {
      sm.ok->add();
      return;
    }
    job.failed = true;
    job.outcome.status = status;
    sm.fail->add();
    if (fail_fast) run.cancelled.store(true, std::memory_order_relaxed);
  };

  // A stage: `workers` threads popping `in`, processing, pushing `out`.
  // The last worker out closes the downstream queue, so shutdown cascades
  // from the feeder to the committer with no central coordinator.
  struct Stage {
    std::vector<std::thread> threads;
    std::shared_ptr<std::atomic<int>> remaining;
  };
  const auto spawn_stage = [&](JobQueue& in, JobQueue& out,
                               std::function<void(Job&)> work) {
    Stage stage;
    stage.remaining = std::make_shared<std::atomic<int>>(static_cast<int>(workers));
    for (unsigned t = 0; t < workers; ++t) {
      stage.threads.emplace_back([&in, &out, work, remaining = stage.remaining] {
        while (auto item = in.pop()) {
          JobPtr job = std::move(*item);
          work(*job);
          out.push(std::move(job));
        }
        if (remaining->fetch_sub(1) == 1) out.close();
      });
    }
    return stage;
  };

  const auto started = std::chrono::steady_clock::now();

  std::vector<Stage> stages;
  stages.push_back(spawn_stage(run.to_load, run.to_encode, [&](Job& job) {
    process(load_m, "engine.load", job,
            [&run](Job& j) { return stage_load(run, j); });
  }));
  stages.push_back(spawn_stage(run.to_encode, run.to_container, [&](Job& job) {
    process(encode_m, "engine.encode", job, [&bits_in, &bits_out](Job& j) {
      const Status status = stage_encode(j);
      if (status.ok()) {
        bits_in.add(j.outcome.original_bits);
        bits_out.add(j.outcome.compressed_bits);
      }
      return status;
    });
  }));
  stages.push_back(spawn_stage(run.to_container, run.to_verify, [&](Job& job) {
    process(container_m, "engine.container", job,
            [](Job& j) { return stage_container(j); });
  }));
  stages.push_back(spawn_stage(run.to_verify, run.done, [&](Job& job) {
    if (!do_verify) return;  // stage disabled: pass through untouched
    process(verify_m, "engine.verify", job,
            [](Job& j) { return stage_verify(j); });
  }));

  // Feeder: materializes jobs into the first queue. Must be its own thread —
  // the main thread commits, and a blocked committer must never block feeding
  // (bounded queues + a single thread doing both would deadlock).
  std::thread feeder([&manifest, &run, this] {
    for (std::size_t i = 0; i < manifest.jobs.size(); ++i) {
      auto job = std::make_unique<Job>();
      job->index = i;
      job->spec = &manifest.jobs[i];
      job->outcome.name = job->spec->name;
      job->outcome.config_summary =
          job->spec->config.describe() +
          (job->spec->config.variable_width ? " var" : "") + " " +
          tiebreak_name(job->spec->tiebreak) + "/" +
          xassign_name(job->spec->xassign);
      job->outcome.container_version = job->spec->container.version;
      job->outcome.output_path =
          resolve_output(options_.output_dir, job->spec->output_path);
      run.to_load.push(std::move(job));
    }
    run.to_load.close();
  });

  // Committer (this thread): reorder buffer keyed by job index; commits —
  // output-file write, callback, result slot — strictly in manifest order.
  BatchResult result;
  result.jobs.resize(manifest.jobs.size());
  std::map<std::size_t, JobPtr> pending;
  std::size_t next = 0;
  const auto commit = [&](JobPtr job) {
    commit_m.in->add();
    if (job->failed || job->outcome.cancelled) {
      commit_m.skip->add();
    } else if (!job->outcome.output_path.empty()) {
      Status status;
      {
        obs::TraceSpan span("engine.commit");
        span.arg("job", job->outcome.name);
        ScopedTimer timer(*commit_m.micros);
        status = guarded([&]() -> Status {
          const std::filesystem::path target(job->outcome.output_path);
          if (target.has_parent_path()) {
            std::filesystem::create_directories(target.parent_path());
          }
          std::ofstream out(job->outcome.output_path, std::ios::binary);
          if (!out.write(job->container.data(),
                         static_cast<std::streamsize>(job->container.size()))) {
            return typed_error(ErrorKind::IoError, "cannot write " +
                                                       job->outcome.output_path);
          }
          return {};
        });
      }
      if (status.ok()) {
        bytes_written.add(job->container.size());
        job->container.clear();  // on disk now; don't hold the bytes twice
        commit_m.ok->add();
      } else {
        job->failed = true;
        job->outcome.status = status;
        commit_m.fail->add();
        if (fail_fast) run.cancelled.store(true, std::memory_order_relaxed);
      }
    } else {
      commit_m.ok->add();
    }
    job->outcome.container = std::move(job->container);
    if (on_commit) on_commit(job->outcome);
    result.jobs[job->index] = std::move(job->outcome);
  };
  while (auto item = run.done.pop()) {
    pending.emplace((*item)->index, std::move(*item));
    while (!pending.empty() && pending.begin()->first == next) {
      commit(std::move(pending.begin()->second));
      pending.erase(pending.begin());
      ++next;
    }
  }

  feeder.join();
  for (Stage& stage : stages) {
    for (std::thread& t : stage.threads) t.join();
  }

  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();
  m.counter("engine.ok").add(result.ok_count());
  m.counter("engine.failed").add(result.failed_count());
  m.counter("engine.cancelled").add(result.cancelled_count());
  return result;
}

}  // namespace tdc::engine
