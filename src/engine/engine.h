#ifndef TDC_ENGINE_ENGINE_H
#define TDC_ENGINE_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/thread_safety.h"
#include "engine/manifest.h"
#include "engine/metrics.h"
#include "exp/bounded_queue.h"

namespace tdc::engine {

/// Tuning knobs of a batch run.
struct EngineOptions {
  /// Worker threads per pipeline stage; 0 = exp::ThreadPool::default_jobs()
  /// ($TDC_JOBS, else hardware concurrency).
  unsigned workers = 0;

  /// Capacity of each inter-stage queue; 0 = max(2 * workers, 4). Bounds
  /// in-flight memory: at most `stages * (capacity + workers)` jobs are ever
  /// materialized, regardless of the batch size.
  std::size_t queue_capacity = 0;

  /// After the first job failure, cancel every job that has not yet entered
  /// a stage (failed/cancelled jobs still appear in the report).
  bool fail_fast = false;

  /// Run the verify stage (container read-back + decode + care-bit
  /// coverage). Disable only for throughput experiments.
  bool verify = true;

  /// Directory prepended to relative job output paths ("" = CWD).
  std::string output_dir = {};

  /// Pre-PR concurrency discipline, kept as the engine bench's measured
  /// contention baseline: queues notify on every transfer whether or not a
  /// waiter exists, stage workers move one job per queue lock round-trip,
  /// and every stage sample is flushed to the shared locked registry per
  /// job instead of once per worker. Results are identical either way —
  /// only lock/futex traffic changes (reported via the queue.* counters).
  bool contention_baseline = false;
};

/// Everything the batch knows about one finished job, in manifest order.
struct JobOutcome {
  std::string name;
  Status status;            ///< ok, or the stage's typed Error
  bool cancelled = false;   ///< skipped because of fail-fast

  std::uint64_t original_bits = 0;
  std::uint64_t compressed_bits = 0;
  std::uint64_t container_bytes = 0;
  double ratio_percent = 0.0;

  std::string config_summary;  ///< LzwConfig::describe() + tiebreak/xassign
  std::uint32_t container_version = 2;
  std::string output_path;  ///< resolved destination; empty if none
  std::string container;    ///< container bytes when no output_path was given

  bool ok() const { return status.ok() && !cancelled; }
};

/// The committed batch: per-job outcomes in manifest order plus wall time.
/// report() is deliberately timing-free, so its bytes are identical for any
/// worker count — the determinism contract the golden test pins down.
struct BatchResult {
  std::vector<JobOutcome> jobs;
  double wall_seconds = 0.0;

  std::size_t ok_count() const;
  std::size_t failed_count() const;
  std::size_t cancelled_count() const;

  /// Deterministic summary table (exp::Table) — one row per job.
  std::string report() const;
};

/// Invoked once per job, in manifest order, right after the job commits —
/// the CLI's per-job progress line.
using CommitCallback = std::function<void(const JobOutcome&)>;

/// Pipelined batch compression engine.
///
/// A manifest of jobs flows through four stages — load (read or prepare the
/// test set) → encode (don't-care-aware LZW) → containerize (TDCLZW1/2) →
/// verify (read-back + decode + care-bit coverage) — each staffed by
/// `workers` threads over bounded MPMC queues (exp::BoundedQueue), so a
/// slow stage applies backpressure instead of buffering the whole batch.
/// A reorder buffer commits results strictly in manifest order: output
/// files are written and the commit callback fires in the same sequence for
/// any worker count, and since every stage is deterministic per job, the
/// committed bytes are too.
///
/// Failures are isolated per job: a stage error (typed tdc::Error) marks
/// that job failed and it skips its remaining stages, while the rest of the
/// batch proceeds — unless fail-fast is on, which cancels all jobs that
/// have not yet entered a stage. Every stage records counters
/// (in/ok/fail/skip) and a latency histogram into the metrics registry.
class Engine {
 public:
  /// `metrics` may be shared/external (benches); the engine owns a private
  /// registry when none is given.
  explicit Engine(EngineOptions options = {}, MetricsRegistry* metrics = nullptr);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  MetricsRegistry& metrics() { return *metrics_; }

  /// Runs the whole batch to completion. Reentrant per Engine instance is
  /// not supported; run one batch at a time.
  BatchResult run(const Manifest& manifest, const CommitCallback& on_commit = {});

 private:
  EngineOptions options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
};

/// Adds one queue's contention counters into `m` as "queue.<name>.*" —
/// shared by the batch engine (whole-run totals at the end of run()) and
/// JobRunner::publish_queue_stats (live deltas mid-flight).
void add_queue_stats(MetricsRegistry& m, const std::string& name,
                     const exp::BoundedQueueStats& s);

/// Persistent job-submission front end: the same load → encode →
/// containerize → verify stages as Engine::run, staffed by a long-lived
/// worker pool fed one JobSpec at a time instead of a whole manifest — the
/// shape a request/response service needs. Each submitted job runs all its
/// stages on one worker (requests are independent, so cross-job parallelism
/// is what matters, not per-job pipelining), failures stay typed and
/// per-job, and the finished outcome (container bytes in
/// JobOutcome::container — runner jobs never write output files) is handed
/// to the submitter's callback on the worker thread.
///
/// Backpressure is explicit: at most `max_in_flight` jobs may be queued or
/// running; past that submit() refuses immediately (the caller maps this to
/// a Busy rejection) instead of buffering unboundedly. Submission flows
/// through a bounded MPMC queue whose contention counters are exposed live
/// via publish_queue_stats() — not just after a run, the way the batch
/// engine reports them.
class JobRunner {
 public:
  struct Options {
    /// Worker threads; 0 = exp::ThreadPool::default_jobs().
    unsigned workers = 0;
    /// Cap on queued + running jobs before submit() refuses; 0 = 2 * workers.
    std::size_t max_in_flight = 0;
    /// Run the verify stage (container read-back + decode + coverage).
    bool verify = true;
  };

  /// Invoked on a worker thread once the job finishes (ok or failed). Must
  /// not throw; keep it cheap — the worker is busy until it returns.
  using DoneCallback = std::function<void(JobOutcome)>;

  JobRunner() : JobRunner(Options(), nullptr) {}
  explicit JobRunner(Options options, MetricsRegistry* metrics = nullptr);
  ~JobRunner();  ///< stop()s: drains queued jobs, joins the pool.

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  MetricsRegistry& metrics() { return *metrics_; }

  /// Submits one compression job. Returns false without queueing anything
  /// when the runner is stopping or max_in_flight jobs are already queued or
  /// running (counted in "runner.busy_rejects").
  bool submit(JobSpec spec, DoneCallback done);

  /// Runs an arbitrary closure on the same pool, under the same in-flight
  /// cap — how the service daemon multiplexes its decode-side requests
  /// (decompress/verify/inspect) onto the engine workers. Must not throw.
  bool submit_task(std::function<void()> task);

  /// Jobs currently queued or running (monitoring only).
  std::size_t in_flight() const;

  /// Blocks until every queued/running job has completed.
  void drain();

  /// Publishes the submission queue's contention counters into the metrics
  /// registry as "queue.service.*" deltas — callable at any time, so a
  /// stats endpoint reports live numbers mid-flight.
  void publish_queue_stats();

  /// Snapshot of the submission queue's counters (tests, monitoring).
  exp::BoundedQueueStats queue_stats() const;

  /// Refuses new submissions, drains everything queued, joins the workers.
  /// Idempotent.
  void stop();

 private:
  struct Item;
  void worker_loop();

  Options options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;

  std::unique_ptr<exp::BoundedQueue<std::unique_ptr<Item>>> queue_;
  std::vector<std::thread> workers_;

  mutable core::Mutex mutex_;
  core::CondVar idle_;
  std::size_t in_flight_ TDC_GUARDED_BY(mutex_) = 0;
  bool stopping_ TDC_GUARDED_BY(mutex_) = false;

  core::Mutex publish_mutex_;
  exp::BoundedQueueStats published_ TDC_GUARDED_BY(publish_mutex_);

  // Pre-resolved instruments; private impl type defined in engine.cpp.
  struct RunnerState;
  std::unique_ptr<RunnerState> state_;
};

}  // namespace tdc::engine

#endif  // TDC_ENGINE_ENGINE_H
