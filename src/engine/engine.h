#ifndef TDC_ENGINE_ENGINE_H
#define TDC_ENGINE_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/error.h"
#include "engine/manifest.h"
#include "engine/metrics.h"

namespace tdc::engine {

/// Tuning knobs of a batch run.
struct EngineOptions {
  /// Worker threads per pipeline stage; 0 = exp::ThreadPool::default_jobs()
  /// ($TDC_JOBS, else hardware concurrency).
  unsigned workers = 0;

  /// Capacity of each inter-stage queue; 0 = max(2 * workers, 4). Bounds
  /// in-flight memory: at most `stages * (capacity + workers)` jobs are ever
  /// materialized, regardless of the batch size.
  std::size_t queue_capacity = 0;

  /// After the first job failure, cancel every job that has not yet entered
  /// a stage (failed/cancelled jobs still appear in the report).
  bool fail_fast = false;

  /// Run the verify stage (container read-back + decode + care-bit
  /// coverage). Disable only for throughput experiments.
  bool verify = true;

  /// Directory prepended to relative job output paths ("" = CWD).
  std::string output_dir = {};

  /// Pre-PR concurrency discipline, kept as the engine bench's measured
  /// contention baseline: queues notify on every transfer whether or not a
  /// waiter exists, stage workers move one job per queue lock round-trip,
  /// and every stage sample is flushed to the shared locked registry per
  /// job instead of once per worker. Results are identical either way —
  /// only lock/futex traffic changes (reported via the queue.* counters).
  bool contention_baseline = false;
};

/// Everything the batch knows about one finished job, in manifest order.
struct JobOutcome {
  std::string name;
  Status status;            ///< ok, or the stage's typed Error
  bool cancelled = false;   ///< skipped because of fail-fast

  std::uint64_t original_bits = 0;
  std::uint64_t compressed_bits = 0;
  std::uint64_t container_bytes = 0;
  double ratio_percent = 0.0;

  std::string config_summary;  ///< LzwConfig::describe() + tiebreak/xassign
  std::uint32_t container_version = 2;
  std::string output_path;  ///< resolved destination; empty if none
  std::string container;    ///< container bytes when no output_path was given

  bool ok() const { return status.ok() && !cancelled; }
};

/// The committed batch: per-job outcomes in manifest order plus wall time.
/// report() is deliberately timing-free, so its bytes are identical for any
/// worker count — the determinism contract the golden test pins down.
struct BatchResult {
  std::vector<JobOutcome> jobs;
  double wall_seconds = 0.0;

  std::size_t ok_count() const;
  std::size_t failed_count() const;
  std::size_t cancelled_count() const;

  /// Deterministic summary table (exp::Table) — one row per job.
  std::string report() const;
};

/// Invoked once per job, in manifest order, right after the job commits —
/// the CLI's per-job progress line.
using CommitCallback = std::function<void(const JobOutcome&)>;

/// Pipelined batch compression engine.
///
/// A manifest of jobs flows through four stages — load (read or prepare the
/// test set) → encode (don't-care-aware LZW) → containerize (TDCLZW1/2) →
/// verify (read-back + decode + care-bit coverage) — each staffed by
/// `workers` threads over bounded MPMC queues (exp::BoundedQueue), so a
/// slow stage applies backpressure instead of buffering the whole batch.
/// A reorder buffer commits results strictly in manifest order: output
/// files are written and the commit callback fires in the same sequence for
/// any worker count, and since every stage is deterministic per job, the
/// committed bytes are too.
///
/// Failures are isolated per job: a stage error (typed tdc::Error) marks
/// that job failed and it skips its remaining stages, while the rest of the
/// batch proceeds — unless fail-fast is on, which cancels all jobs that
/// have not yet entered a stage. Every stage records counters
/// (in/ok/fail/skip) and a latency histogram into the metrics registry.
class Engine {
 public:
  /// `metrics` may be shared/external (benches); the engine owns a private
  /// registry when none is given.
  explicit Engine(EngineOptions options = {}, MetricsRegistry* metrics = nullptr);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  MetricsRegistry& metrics() { return *metrics_; }

  /// Runs the whole batch to completion. Reentrant per Engine instance is
  /// not supported; run one batch at a time.
  BatchResult run(const Manifest& manifest, const CommitCallback& on_commit = {});

 private:
  EngineOptions options_;
  std::unique_ptr<MetricsRegistry> owned_metrics_;
  MetricsRegistry* metrics_;
};

}  // namespace tdc::engine

#endif  // TDC_ENGINE_ENGINE_H
