#include "engine/metrics.h"

#include <bit>
#include <cstdio>

#include "exp/bench_json.h"

namespace tdc::engine {

namespace {

/// Bucket index for a sample: 0 holds value 0, bucket b holds
/// [2^(b-1), 2^b), the last bucket is a catch-all.
std::size_t bucket_of(std::uint64_t value) {
  if (value == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(value));
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

}  // namespace

void Histogram::record(std::uint64_t value) {
  std::unique_lock lock(mutex_);
  if (data_.count == 0 || value < data_.min) data_.min = value;
  if (value > data_.max) data_.max = value;
  ++data_.count;
  data_.sum += value;
  ++data_.buckets[bucket_of(value)];
}

Histogram::Snapshot Histogram::snapshot() const {
  std::unique_lock lock(mutex_);
  return data_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::unique_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::unique_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  std::unique_lock lock(mutex_);
  std::string json = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    json += first ? "\n" : ",\n";
    json += "    \"" + exp::json_escape(name) +
            "\": " + std::to_string(counter->value());
    first = false;
  }
  json += first ? "},\n" : "\n  },\n";
  json += "  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot s = histogram->snapshot();
    json += first ? "\n" : ",\n";
    json += "    \"" + exp::json_escape(name) + "\": {";
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
                  "\"max\": %llu, \"mean\": %.3f, \"buckets\": [",
                  static_cast<unsigned long long>(s.count),
                  static_cast<unsigned long long>(s.sum),
                  static_cast<unsigned long long>(s.min),
                  static_cast<unsigned long long>(s.max), s.mean());
    json += buf;
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (s.buckets[b] == 0) continue;
      // Upper bound of bucket b: value 0 for b = 0, else 2^b - 1.
      const unsigned long long upper = b == 0 ? 0 : (1ull << b) - 1;
      std::snprintf(buf, sizeof buf, "%s[%llu, %llu]", first_bucket ? "" : ", ",
                    upper, static_cast<unsigned long long>(s.buckets[b]));
      json += buf;
      first_bucket = false;
    }
    json += "]}";
    first = false;
  }
  json += first ? "}\n}\n" : "\n  }\n}\n";
  return json;
}

}  // namespace tdc::engine
