#ifndef TDC_ENGINE_MANIFEST_H
#define TDC_ENGINE_MANIFEST_H

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/error.h"
#include "lzw/encoder.h"
#include "lzw/stream_io.h"
#include "scan/testset.h"

namespace tdc::engine {

/// One batch job: where the test set comes from, how it is compressed, and
/// where the container goes. Exactly one input source is set.
struct JobSpec {
  std::string name;

  // --- input source (exactly one)
  std::string input_path;   ///< a .tests cube file
  std::string gen_circuit;  ///< suite profile name, prepared via exp::prepare
  std::shared_ptr<const scan::TestSet> inline_tests;  ///< benches/tests

  // --- codec parameterization
  lzw::LzwConfig config;
  lzw::Tiebreak tiebreak = lzw::Tiebreak::First;
  lzw::XAssignMode xassign = lzw::XAssignMode::Dynamic;
  std::uint64_t rng_seed = 1;  ///< only meaningful for XAssignMode::RandomFill

  /// Multi-codec selection mode (`codec=` / `--codec`): a codec token,
  /// "auto" or "race" routes the job through per-chunk selection and a
  /// version-3 container. Empty keeps the legacy whole-buffer LZW path and
  /// the v1/v2 container bytes exactly as before.
  std::string codec;
  std::uint32_t chunk_trits = 0;  ///< 0 = codec::kDefaultChunkTrits

  // --- container + destination
  lzw::ContainerOptions container;
  std::string output_path;  ///< empty: container kept in memory only

  /// Request-scoped trace id, propagated by the service daemon from the
  /// wire protocol's `trace=<id>` param into this job's engine span args so
  /// one Perfetto view links client, dispatcher and worker. Batch jobs
  /// leave it empty — the manifest format has no such key.
  std::string trace;
};

/// An ordered batch of jobs — the unit the engine runs.
struct Manifest {
  std::vector<JobSpec> jobs;
};

/// Stable lower-case names used by the manifest format and the batch report.
const char* tiebreak_name(lzw::Tiebreak tiebreak);
const char* xassign_name(lzw::XAssignMode mode);
Result<lzw::Tiebreak> parse_tiebreak(const std::string& name);
Result<lzw::XAssignMode> parse_xassign(const std::string& name);

/// Parses the line-oriented manifest format:
///
///     # opentdc batch manifest
///     version 1
///     job name=first input=a.tests dict=1024 char=7 entry=63 out=a.tdclzw
///     job name=v1 gen=itc_b09f dict=256 tiebreak=lookahead container=1
///
/// One `job` line per job, `key=value` tokens plus the bare flag
/// `variable`. Keys: name, input, gen, dict, char, entry, tiebreak
/// (first|lowestchar|mostrecent|mostchildren|lookahead), xassign
/// (dynamic|zero|one|repeat|random), seed, container (1|2), chunk, out,
/// codec (a codec token|auto|race — selects the v3 multi-codec container),
/// chunk_trits (per-chunk granularity for codec= jobs).
/// Relative input paths resolve against `base_dir`; output paths are left
/// relative (the engine's output_dir option anchors them at run time).
/// Every job is validated here — config realizability, container options,
/// duplicate names — so the pipeline only ever sees runnable specs.
/// Errors are typed ConfigMismatch with the offending line number.
Result<Manifest> parse_manifest(std::istream& in, const std::string& base_dir = {});

/// parse_manifest over a file; IoError if it cannot be opened.
Result<Manifest> load_manifest(const std::string& path);

}  // namespace tdc::engine

#endif  // TDC_ENGINE_MANIFEST_H
