#ifndef TDC_ENGINE_METRICS_H
#define TDC_ENGINE_METRICS_H

// The metrics instruments were born here and moved down into tdc::obs so
// the codec core and the CLI can record through the same types without
// linking the engine. This header keeps every historical tdc::engine
// spelling (Counter, Histogram, ScopedTimer, MetricsRegistry) working.
#include "obs/metrics.h"

namespace tdc::engine {

using Counter = obs::Counter;
using Histogram = obs::Histogram;
using LocalHistogram = obs::LocalHistogram;
using ScopedTimer = obs::ScopedTimer;
using MetricsRegistry = obs::MetricsRegistry;

}  // namespace tdc::engine

#endif  // TDC_ENGINE_METRICS_H
