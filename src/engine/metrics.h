#ifndef TDC_ENGINE_METRICS_H
#define TDC_ENGINE_METRICS_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace tdc::engine {

/// Monotonic event counter (thread-safe, relaxed — counters are statistics,
/// not synchronization).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log2-bucketed histogram: bucket b counts samples in [2^(b-1), 2^b).
/// The engine records stage latencies in microseconds and payload sizes in
/// bytes through these; 48 buckets cover ~3 days in µs and ~256 TB in bytes.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::array<std::uint64_t, kBuckets> buckets{};

    double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  };

  void record(std::uint64_t value);
  Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  Snapshot data_;
};

/// Records the lifetime of the scope into a histogram as microseconds —
/// wrap one stage execution and the latency lands in `<stage>.micros`.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& histogram)
      : histogram_(histogram), start_(std::chrono::steady_clock::now()) {}

  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histogram_.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count()));
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& histogram_;
  std::chrono::steady_clock::time_point start_;
};

/// Named counters + histograms, created on first use and stable for the
/// registry's lifetime — the engine instruments every stage through one of
/// these, and benches read the same numbers the production path records.
///
/// counter()/histogram() return references that stay valid until the
/// registry is destroyed, so hot paths resolve a name once and keep the
/// pointer. to_json() is a consistent-enough snapshot for reporting: each
/// instrument is read atomically, the set of instruments under a lock.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters": {name: value, ...}, "histograms": {name: {count, sum,
  /// min, max, mean, buckets: [[upper_bound, count], ...]}, ...}} — keys
  /// sorted (std::map), so the rendering is deterministic.
  std::string to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace tdc::engine

#endif  // TDC_ENGINE_METRICS_H
