# Shared driver for the `format` / `format-check` targets.
#   cmake -DTOOL=<clang-format> -DMODE=check|fix -DGLOBS=<dirs> -P format.cmake
# MODE=check exits non-zero when any file needs reformatting (listing them);
# MODE=fix rewrites in place. Missing tool degrades to a warning so the
# target exists on machines without LLVM installed.
if(NOT TOOL)
  message(WARNING "clang-format not installed; format check skipped")
  return()
endif()

set(sources)
foreach(glob IN LISTS GLOBS)
  file(GLOB_RECURSE hits
       "${glob}.h" "${glob}.hpp" "${glob}.cpp" "${glob}.cc")
  list(APPEND sources ${hits})
endforeach()
# Lint fixtures are data with line numbers pinned by tests/lint_test.cpp;
# reformatting them would shift the asserted positions.
list(FILTER sources EXCLUDE REGEX "tests/lint_fixtures/")
list(SORT sources)

set(dirty)
foreach(file IN LISTS sources)
  if(MODE STREQUAL "fix")
    execute_process(COMMAND "${TOOL}" -i --style=file "${file}"
                    RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "clang-format failed on ${file}")
    endif()
  else()
    execute_process(COMMAND "${TOOL}" --dry-run --Werror --style=file "${file}"
                    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
    if(NOT rc EQUAL 0)
      list(APPEND dirty "${file}")
    endif()
  endif()
endforeach()

list(LENGTH sources total)
if(MODE STREQUAL "fix")
  message(STATUS "clang-format: ${total} file(s) formatted")
elseif(dirty)
  list(LENGTH dirty n)
  foreach(file IN LISTS dirty)
    message(STATUS "needs formatting: ${file}")
  endforeach()
  message(FATAL_ERROR "clang-format: ${n} of ${total} file(s) need formatting")
else()
  message(STATUS "clang-format: all ${total} file(s) clean")
endif()
