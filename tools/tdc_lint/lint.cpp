#include "tdc_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace tdc::lint {

namespace {

// ------------------------------------------------------------- path scoping

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// Paths whose output must be bit-reproducible: any entropy or clock read
/// here can silently break the "identical stream for any --jobs" guarantee.
bool in_deterministic_path(const std::string& path) {
  return starts_with(path, "src/lzw/") || starts_with(path, "src/engine/") ||
         starts_with(path, "src/codec/") || starts_with(path, "src/bits/");
}

/// Paths where every thrown exception must come from the tdc::Error
/// taxonomy (core/error.h) so callers get typed, position-carrying errors.
bool in_taxonomy_path(const std::string& path) {
  return in_deterministic_path(path) || starts_with(path, "src/hw/") ||
         starts_with(path, "src/core/");
}

bool in_library_path(const std::string& path) { return starts_with(path, "src/"); }

bool is_header(const std::string& path) {
  return path.size() >= 2 && (path.rfind(".h") == path.size() - 2 ||
                              (path.size() >= 4 && path.rfind(".hpp") == path.size() - 4));
}

// ------------------------------------------------- scrubbing + suppressions

/// One allow(rule) suppression, tracked for the stale-suppression audit:
/// report() marks the record used when it actually swallows a finding, and
/// whatever is still unused at the end of the file is itself a violation.
/// (The tag is spelled out only inside harvest_allows — writing it in a
/// comment here would register a suppression in this very file.)
struct AllowRecord {
  std::string rule;
  int origin_line = 0;  ///< 1-based line the comment sits on
  bool used = false;
};

/// Comment- and literal-stripped copy of the source plus the suppression
/// map and `tdc-sync:` coverage harvested from the comments while stripping.
struct Scrubbed {
  std::vector<std::string> lines;  ///< literals/comments blanked, 0-based
  /// Every allow() parsed from the comments, in source order.
  std::vector<AllowRecord> allows;
  /// 1-based line -> rule id -> index into `allows` (an allow comment
  /// covers its own line and the next one).
  std::map<int, std::map<std::string, std::size_t>> allowed;
  /// 1-based lines carrying a `tdc-sync:` justification comment (the
  /// memory-order-audit declaration check walks up through comment-only
  /// lines to find one).
  std::set<int> sync_lines;
};

/// Parses occurrences of the suppression tag (the `tag` literal below,
/// followed by a comma-separated rule list and a closing paren) inside one
/// comment's text and registers them for `line` and `line + 1`; also
/// records `tdc-sync:` tags for the memory-order-audit rule.
void harvest_allows(const std::string& comment, int line, Scrubbed& out) {
  if (comment.find("tdc-sync:") != std::string::npos) {
    out.sync_lines.insert(line);
  }
  const std::string tag = "tdc-lint: allow(";
  std::size_t at = 0;
  while ((at = comment.find(tag, at)) != std::string::npos) {
    const std::size_t open = at + tag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string inside = comment.substr(open, close - open);
    std::string rule;
    std::istringstream list(inside);
    while (std::getline(list, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      const std::string id = rule.substr(b, e - b + 1);
      out.allows.push_back({id, line, false});
      const std::size_t idx = out.allows.size() - 1;
      out.allowed[line].emplace(id, idx);
      out.allowed[line + 1].emplace(id, idx);
    }
    at = close;
  }
}

/// True when `line` (1-based) is covered by a tdc-sync comment: the tag on
/// the line itself or separated from it only by comment/blank lines above.
bool sync_covered(const Scrubbed& sc, int line) {
  for (int m = line; m >= 1; --m) {
    if (sc.sync_lines.count(m) != 0) return true;
    if (m != line) {
      const std::string& s = sc.lines[static_cast<std::size_t>(m) - 1];
      if (s.find_first_not_of(" \t") != std::string::npos) return false;
    }
  }
  return false;
}

/// One-pass state machine producing the scrubbed lines. Handles //, /*...*/,
/// "...", '...' and raw string literals R"tag(...)tag". Blanked characters
/// become spaces so columns and line counts are preserved.
Scrubbed scrub(const std::string& content) {
  Scrubbed out;
  enum class State { Normal, Line, Block, Str, Chr, Raw };
  State state = State::Normal;
  std::string line;        // scrubbed current line
  std::string comment;     // text of the comment being consumed
  int comment_line = 1;    // line the current comment started on
  std::string raw_tag;     // )tag" terminator of the active raw literal
  int lineno = 1;

  auto end_line = [&] {
    if (state == State::Line) {
      harvest_allows(comment, comment_line, out);
      comment.clear();
      state = State::Normal;
    }
    out.lines.push_back(line);
    line.clear();
    ++lineno;
  };

  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::Block) harvest_allows(comment, lineno, out), comment.clear();
      end_line();
      continue;
    }
    switch (state) {
      case State::Normal:
        if (c == '/' && next == '/') {
          state = State::Line;
          comment_line = lineno;
          line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::Block;
          comment_line = lineno;
          line += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string? Look back for an R (optionally u8R/uR/LR prefixes).
          if (i > 0 && content[i - 1] == 'R') {
            std::size_t j = i + 1;
            std::string tag;
            while (j < content.size() && content[j] != '(') tag += content[j++];
            raw_tag = ")" + tag + "\"";
            state = State::Raw;
            line += '"';
          } else {
            state = State::Str;
            line += '"';
          }
        } else if (c == '\'') {
          state = State::Chr;
          line += '\'';
        } else {
          line += c;
        }
        break;
      case State::Line:
        comment += c;
        line += ' ';
        break;
      case State::Block:
        if (c == '*' && next == '/') {
          harvest_allows(comment, comment_line, out);
          comment.clear();
          state = State::Normal;
          line += "  ";
          ++i;
        } else {
          comment += c;
          line += ' ';
        }
        break;
      case State::Str:
        if (c == '\\') {
          line += "  ";
          ++i;
          if (next == '\n') --i;  // let the newline be processed normally
        } else if (c == '"') {
          state = State::Normal;
          line += '"';
        } else {
          line += ' ';
        }
        break;
      case State::Chr:
        if (c == '\\') {
          line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::Normal;
          line += '\'';
        } else {
          line += ' ';
        }
        break;
      case State::Raw:
        if (c == ')' && content.compare(i, raw_tag.size(), raw_tag) == 0) {
          // Consume the terminator on this line (raw strings stay rare and
          // short in this codebase; multi-line bodies are blanked above).
          line += '"';
          i += raw_tag.size() - 1;
          state = State::Normal;
        } else {
          line += ' ';
        }
        break;
    }
  }
  if (!line.empty() || content.empty() || content.back() == '\n') {
    if (state == State::Line || state == State::Block) {
      harvest_allows(comment, comment_line, out);
    }
    out.lines.push_back(line);
  }
  return out;
}

// ---------------------------------------------------------------- tokenizer

struct Token {
  std::string text;
  int line = 0;  ///< 1-based
};

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Identifiers, numbers and punctuation from the scrubbed lines. "::" and
/// "->" are kept as single tokens (the rules key on them); every other
/// punctuation character is its own token.
std::vector<Token> tokenize(const Scrubbed& sc) {
  std::vector<Token> tokens;
  for (std::size_t li = 0; li < sc.lines.size(); ++li) {
    const std::string& s = sc.lines[li];
    const int lineno = static_cast<int>(li) + 1;
    for (std::size_t i = 0; i < s.size();) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
      } else if (ident_start(c)) {
        std::size_t j = i;
        while (j < s.size() && ident_char(s[j])) ++j;
        tokens.push_back({s.substr(i, j - i), lineno});
        i = j;
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        std::size_t j = i;
        while (j < s.size() && (ident_char(s[j]) || s[j] == '.' || s[j] == '\'')) ++j;
        tokens.push_back({s.substr(i, j - i), lineno});
        i = j;
      } else if (c == ':' && i + 1 < s.size() && s[i + 1] == ':') {
        tokens.push_back({"::", lineno});
        i += 2;
      } else if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
        tokens.push_back({"->", lineno});
        i += 2;
      } else {
        tokens.push_back({std::string(1, c), lineno});
        ++i;
      }
    }
  }
  return tokens;
}

const std::string& tok(const std::vector<Token>& t, std::size_t i) {
  static const std::string empty;
  return i < t.size() ? t[i].text : empty;
}

/// True when token i names a free (or std-qualified) entity: rejects member
/// access (`x.time`, `p->clock`) and foreign qualification (`foo::rand`).
bool free_or_std_qualified(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return true;
  const std::string& prev = t[i - 1].text;
  if (prev == "." || prev == "->") return false;
  if (prev == "::") {
    const std::string& qual = i >= 2 ? t[i - 2].text : "";
    return qual == "std" || qual == "chrono";
  }
  return true;
}

// ------------------------------------------------------------------- rules

struct Ctx {
  const std::string& path;
  Scrubbed& sc;  ///< non-const: report() marks matched suppressions used
  const std::vector<Token>& tokens;
  std::vector<Finding>& findings;

  void report(const std::string& rule, int line, const std::string& message) const {
    const auto it = sc.allowed.find(line);
    if (it != sc.allowed.end()) {
      const auto r = it->second.find(rule);
      if (r != it->second.end()) {
        sc.allows[r->second].used = true;
        return;
      }
    }
    findings.push_back({path, line, rule, message});
  }
};

/// determinism — no entropy or wall-clock reads where output must be
/// bit-reproducible. steady_clock is sanctioned (monotonic, used only for
/// durations); bits::Rng is the sanctioned seeded PRNG.
void check_determinism(const Ctx& ctx) {
  if (!in_deterministic_path(ctx.path)) return;
  static const std::set<std::string> banned_calls = {
      "rand", "srand", "rand_r",   "clock",  "time",
      "mktime", "gettimeofday", "localtime", "gmtime"};
  static const std::set<std::string> banned_names = {
      "random_device", "system_clock", "high_resolution_clock", "mt19937",
      "mt19937_64", "default_random_engine"};
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!free_or_std_qualified(t, i)) continue;
    if (banned_names.count(t[i].text) != 0) {
      ctx.report("determinism", t[i].line,
                 "'" + t[i].text +
                     "' in a deterministic path; use bits::Rng (seeded) or "
                     "steady_clock for durations");
    } else if (banned_calls.count(t[i].text) != 0 && tok(t, i + 1) == "(") {
      ctx.report("determinism", t[i].line,
                 "call to '" + t[i].text +
                     "()' in a deterministic path; entropy and wall-clock "
                     "reads break --jobs reproducibility");
    }
  }
}

/// iostream-print — library code must not write to the console; only
/// examples/, bench/ and tests/ own stdout/stderr. (snprintf and file
/// streams are fine: the rule is about console output, not formatting.)
void check_iostream_print(const Ctx& ctx) {
  if (!in_library_path(ctx.path)) return;
  static const std::set<std::string> stream_objects = {"cout", "cerr", "clog"};
  static const std::set<std::string> print_calls = {"printf", "vprintf", "puts",
                                                    "putchar"};
  static const std::set<std::string> file_calls = {"fprintf", "fputs", "fputc",
                                                   "fwrite", "vfprintf"};
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    // #include <iostream> (tokens: # include < iostream >)
    if (t[i].text == "iostream" && tok(t, i - 1) == "<" && tok(t, i + 1) == ">") {
      ctx.report("iostream-print", t[i].line,
                 "library code must not include <iostream>; only examples/, "
                 "bench/ and tests/ may print");
      continue;
    }
    if (t[i].text == "#" || !free_or_std_qualified(t, i)) continue;
    if (stream_objects.count(t[i].text) != 0) {
      ctx.report("iostream-print", t[i].line,
                 "console stream 'std::" + t[i].text + "' in library code");
    } else if (print_calls.count(t[i].text) != 0 && tok(t, i + 1) == "(") {
      ctx.report("iostream-print", t[i].line,
                 "console output call '" + t[i].text + "()' in library code");
    } else if (file_calls.count(t[i].text) != 0 && tok(t, i + 1) == "(") {
      // Only a console FILE* makes these console output: scan the call's
      // argument tokens (bounded) for stdout/stderr.
      for (std::size_t j = i + 2, depth = 1; j < t.size() && j < i + 40 && depth > 0;
           ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") --depth;
        if (t[j].text == "stdout" || t[j].text == "stderr") {
          ctx.report("iostream-print", t[i].line,
                     "'" + t[i].text + "(" + t[j].text +
                         ", ...)' writes to the console from library code");
          break;
        }
      }
    }
  }
}

/// naked-throw — inside the taxonomy paths every throw must raise a
/// tdc::Error-family type (or be a bare rethrow) so callers always receive
/// typed, position-carrying failures.
void check_naked_throw(const Ctx& ctx) {
  if (!in_taxonomy_path(ctx.path)) return;
  static const std::set<std::string> allowed = {"Error", "ContainerError",
                                               "DecodeError", "TdcError"};
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "throw") continue;
    std::size_t j = i + 1;
    if (tok(t, j) == ";") continue;  // rethrow
    // Walk the qualified-id (`tdc::Error`, `std::runtime_error`, ...) up to
    // the constructor call / brace / template argument list.
    std::string last_ident;
    while (j < t.size()) {
      const std::string& s = t[j].text;
      if (s == "::") {
        ++j;
        continue;
      }
      if (!ident_start(s[0])) break;
      last_ident = s;
      ++j;
    }
    if (allowed.count(last_ident) == 0) {
      ctx.report("naked-throw", t[i].line,
                 "throw of '" + (last_ident.empty() ? "<expression>" : last_ident) +
                     "' outside the tdc::Error taxonomy; raise a typed "
                     "tdc::Error (core/error.h) instead");
    }
  }
}

/// unordered-iteration — a range-for over a std::unordered_* container has
/// unspecified order; anywhere in library code that is one sort away from a
/// nondeterministic serialized artifact. Iterate a sorted copy instead.
void check_unordered_iteration(const Ctx& ctx) {
  if (!in_library_path(ctx.path)) return;
  static const std::set<std::string> unordered_types = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  const auto& t = ctx.tokens;

  // Pass 1: names declared with an unordered type in this file.
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (unordered_types.count(t[i].text) == 0 || tok(t, i + 1) != "<") continue;
    std::size_t j = i + 2;
    for (int depth = 1; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "<") ++depth;
      if (t[j].text == ">") --depth;
    }
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*" || t[j].text == "const")) {
      ++j;
    }
    if (j < t.size() && ident_start(t[j].text[0])) names.insert(t[j].text);
  }
  if (names.empty()) return;

  // Pass 2: range-for whose range expression ends in one of those names.
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "for" || tok(t, i + 1) != "(") continue;
    std::size_t j = i + 2;
    int depth = 1;
    std::size_t colon = 0;
    for (; j < t.size() && depth > 0; ++j) {
      if (t[j].text == "(") ++depth;
      if (t[j].text == ")") --depth;
      if (depth == 1 && t[j].text == ":" && colon == 0) colon = j;
    }
    if (colon == 0) continue;  // classic for
    // Range expression = tokens (colon, j-1). A call in the expression
    // (e.g. `sorted(map_)`) is the sanctioned fix, so skip those.
    std::string last_ident;
    bool has_call = false;
    for (std::size_t k = colon + 1; k + 1 < j; ++k) {
      if (t[k].text == "(") has_call = true;
      if (ident_start(t[k].text[0])) last_ident = t[k].text;
    }
    if (!has_call && names.count(last_ident) != 0) {
      ctx.report("unordered-iteration", t[colon].line,
                 "range-for over unordered container '" + last_ident +
                     "'; iteration order is unspecified and must not feed "
                     "serialized output — iterate a sorted copy");
    }
  }
}

/// memory-order-audit — every atomic operation must spell its memory_order
/// (the default seq_cst hides the protocol and costs fences nobody asked
/// for), and every std::atomic<> declaration must carry a `// tdc-sync:`
/// comment justifying the ordering it participates in. The comment may sit
/// on the declaration's own line or any comment/blank line directly above
/// it, so one justification can head a block of related atomics only when
/// nothing but comments separates them.
void check_memory_order(const Ctx& ctx) {
  static const std::set<std::string> ops = {
      "load",      "store",     "exchange",     "fetch_add",
      "fetch_sub", "fetch_and", "fetch_or",     "fetch_xor",
      "test_and_set", "compare_exchange_weak", "compare_exchange_strong"};
  const auto& t = ctx.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    // Operation check: member calls only (free `load(...)` is some other
    // function, not an atomic op).
    if (ops.count(s) != 0 && i > 0 &&
        (t[i - 1].text == "." || t[i - 1].text == "->") && tok(t, i + 1) == "(") {
      std::size_t orders = 0;
      std::size_t j = i + 2;
      for (int depth = 1; j < t.size() && depth > 0; ++j) {
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") --depth;
        if (starts_with(t[j].text, "memory_order")) ++orders;
      }
      const std::size_t need = starts_with(s, "compare_exchange") ? 2 : 1;
      if (orders == 0) {
        ctx.report("memory-order-audit", t[i].line,
                   "atomic '" + s +
                       "' relies on the implicit seq_cst default; spell the "
                       "memory_order explicitly");
      } else if (orders < need) {
        ctx.report("memory-order-audit", t[i].line,
                   "'" + s +
                       "' names only a success order; compare_exchange takes "
                       "explicit success and failure orders");
      }
    }
    // Declaration check: `atomic<` ... `>` [>&* const]* identifier, where a
    // declarator is recognized by its terminator ({, ; or =) — this skips
    // function parameters and nested template arguments like
    // make_shared<std::atomic<int>>(...).
    if (s == "atomic" && tok(t, i + 1) == "<") {
      std::size_t j = i + 2;
      for (int depth = 1; j < t.size() && depth > 0; ++j) {
        if (t[j].text == "<") ++depth;
        if (t[j].text == ">") --depth;
      }
      while (j < t.size() && (t[j].text == ">" || t[j].text == "&" ||
                              t[j].text == "*" || t[j].text == "const")) {
        ++j;
      }
      if (j < t.size() && ident_start(t[j].text[0])) {
        const std::string& term = tok(t, j + 1);
        if ((term == "{" || term == ";" || term == "=") &&
            !sync_covered(ctx.sc, t[i].line)) {
          ctx.report("memory-order-audit", t[i].line,
                     "std::atomic declaration without a '// tdc-sync:' "
                     "justification; document the ordering protocol at the "
                     "declaration site");
        }
      }
    }
  }
}

/// blocking-under-lock — no unbounded I/O, sleep or nested condition wait
/// while a lock scope is open: whoever else wants that mutex now waits on a
/// peer's socket. Lock scopes are recognized lexically from guard
/// declarations (`lock_guard<...> g(m)`, `core::MutexLock lock(m)`), which
/// deliberately ignores parameters (`MutexLock& lock`) and member
/// declarations — those hold nothing at this site.
void check_blocking_under_lock(const Ctx& ctx) {
  static const std::set<std::string> lock_types = {
      "lock_guard", "unique_lock", "scoped_lock", "shared_lock", "MutexLock"};
  // Raw descriptors block arbitrarily long; flagged as free or ::-global
  // calls (a member `.read(...)` is some object's method, not the syscall).
  static const std::set<std::string> syscalls = {
      "poll", "select", "pselect", "epoll_wait", "read",   "write",  "send",
      "recv", "sendmsg", "recvmsg", "accept",    "accept4", "connect"};
  // Project I/O wrappers and sleeps: blocking in any call form.
  static const std::set<std::string> wrappers = {
      "write_frame", "read_exact", "write_all", "sleep_for", "sleep_until"};
  // A condition wait *releases its own lock* — the violation is waiting
  // while a second scope stays held across the sleep.
  static const std::set<std::string> cv_waits = {"wait", "wait_for",
                                                 "wait_until"};
  const auto& t = ctx.tokens;
  int depth = 0;
  std::vector<int> scopes;  // brace depth at which each held guard was declared
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "{") {
      ++depth;
      continue;
    }
    if (s == "}") {
      --depth;
      while (!scopes.empty() && scopes.back() > depth) scopes.pop_back();
      continue;
    }
    if (lock_types.count(s) != 0) {
      std::size_t j = i + 1;
      if (tok(t, j) == "<") {
        ++j;
        for (int d = 1; j < t.size() && d > 0; ++j) {
          if (t[j].text == "<") ++d;
          if (t[j].text == ">") --d;
        }
      }
      if (j < t.size() && ident_start(t[j].text[0]) &&
          (tok(t, j + 1) == "(" || tok(t, j + 1) == "{")) {
        scopes.push_back(depth);
      }
      continue;
    }
    if (scopes.empty()) continue;
    if (cv_waits.count(s) != 0 && i > 0 &&
        (t[i - 1].text == "." || t[i - 1].text == "->") && tok(t, i + 1) == "(") {
      if (scopes.size() >= 2) {
        ctx.report("blocking-under-lock", t[i].line,
                   "condition '" + s +
                       "' with a second lock scope open; the outer lock stays "
                       "held across the sleep");
      }
      continue;
    }
    if (tok(t, i + 1) != "(") continue;
    if (wrappers.count(s) != 0) {
      ctx.report("blocking-under-lock", t[i].line,
                 "'" + s +
                     "()' performs I/O or sleeps while a lock scope is open; "
                     "copy what you need and call it after the guard releases");
      continue;
    }
    if (syscalls.count(s) != 0) {
      bool free_call = true;
      if (i > 0) {
        const std::string& prev = t[i - 1].text;
        if (prev == "." || prev == "->") {
          free_call = false;
        } else if (prev == "::") {
          free_call = !(i >= 2 && ident_start(t[i - 2].text[0]));
        }
      }
      if (free_call) {
        ctx.report("blocking-under-lock", t[i].line,
                   "blocking call '" + s +
                       "()' while a lock scope is open; do descriptor I/O "
                       "after the guard releases");
      }
    }
  }
}

std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// alloc-before-validate — in the wire-facing trees (src/service/,
/// src/codec/) a decode-path function must not size an allocation from a
/// variable before that variable has met a bound check. The heuristic:
/// inside any function whose name smells like decoding, every plain
/// identifier feeding `.resize(...)`, `.reserve(...)` or `new T[...]` must
/// appear earlier in the function next to a comparison operator or inside a
/// TDC_REQUIRE/TDC_ENSURE/TDC_CHECK/assert argument list.
void check_alloc_before_validate(const Ctx& ctx) {
  if (!starts_with(ctx.path, "src/service/") &&
      !starts_with(ctx.path, "src/codec/")) {
    return;
  }
  static const std::set<std::string> control = {
      "if",     "for",    "while", "switch", "catch",
      "return", "sizeof", "else",  "do",     "constexpr"};
  static const std::set<std::string> decode_stems = {
      "decode", "decompress", "read", "parse", "expand", "inspect"};
  static const std::set<std::string> check_macros = {"TDC_REQUIRE", "TDC_ENSURE",
                                                     "TDC_CHECK", "assert"};
  static const std::set<std::string> type_words = {
      "const",    "unsigned",  "signed",          "auto",
      "std",      "static_cast", "reinterpret_cast", "const_cast",
      "true",     "false",     "nullptr"};
  const auto& t = ctx.tokens;

  // Pass 1: opening-brace token index -> function name, recognized as
  // `name (args) [qualifiers]* {` with a short qualifier run that contains
  // no expression punctuation (rejects calls, initializers and init lists).
  std::map<std::size_t, std::string> fn_at;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!ident_start(t[i].text[0]) || control.count(t[i].text) != 0) continue;
    if (tok(t, i + 1) != "(") continue;
    std::size_t j = i + 2;
    for (int d = 1; j < t.size() && d > 0; ++j) {
      if (t[j].text == "(") ++d;
      if (t[j].text == ")") --d;
    }
    std::size_t k = j;
    std::size_t steps = 0;
    bool plausible = true;
    while (k < t.size() && t[k].text != "{") {
      const std::string& q = t[k].text;
      if (q == ";" || q == "," || q == ")" || q == "(" || q == "=" || q == "}") {
        plausible = false;
        break;
      }
      if (++steps > 12) {
        plausible = false;
        break;
      }
      ++k;
    }
    if (plausible && k < t.size()) fn_at[k] = t[i].text;
  }

  // Pass 2: walk the file tracking the innermost named function (lambdas
  // open no frame, so their bodies inherit the enclosing function's name
  // and validation region).
  struct FnFrame {
    std::string name;
    int depth = 0;
    std::size_t start = 0;  ///< token index of the opening brace
    bool decodeish = false;
  };
  std::vector<FnFrame> frames;
  int depth = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "{") {
      ++depth;
      const auto it = fn_at.find(i);
      if (it != fn_at.end()) {
        FnFrame frame{it->second, depth, i, false};
        const std::string lname = to_lower(frame.name);
        for (const std::string& stem : decode_stems) {
          if (lname.find(stem) != std::string::npos) frame.decodeish = true;
        }
        frames.push_back(frame);
      }
      continue;
    }
    if (s == "}") {
      if (!frames.empty() && frames.back().depth == depth) frames.pop_back();
      --depth;
      continue;
    }
    if (frames.empty() || !frames.back().decodeish) continue;

    // Allocation site?
    std::size_t args_begin = 0, args_end = 0;
    if ((s == "resize" || s == "reserve") && i > 0 &&
        (t[i - 1].text == "." || t[i - 1].text == "->") && tok(t, i + 1) == "(") {
      args_begin = i + 2;
      std::size_t j = args_begin;
      for (int d = 1; j < t.size() && d > 0; ++j) {
        if (t[j].text == "(") ++d;
        if (t[j].text == ")") --d;
      }
      args_end = j - 1;
    } else if (s == "new") {
      std::size_t j = i + 1;
      const std::size_t limit = i + 8;
      while (j < t.size() && j < limit && t[j].text != "[" && t[j].text != ";" &&
             t[j].text != "(") {
        ++j;
      }
      if (j < t.size() && t[j].text == "[") {
        args_begin = j + 1;
        std::size_t k = args_begin;
        for (int d = 1; k < t.size() && d > 0; ++k) {
          if (t[k].text == "[") ++d;
          if (t[k].text == "]") --d;
        }
        args_end = k - 1;
      }
    }
    if (args_begin == 0 || args_end <= args_begin) continue;

    // Top-level plain identifiers in the size expression. An identifier
    // followed by `(` is a call, by `<` a template-id or an inline clamp
    // (`n < cap ? n : cap`) — both already bounded, so skipped.
    std::set<std::string> idents;
    int d = 0;
    for (std::size_t k = args_begin; k < args_end; ++k) {
      const std::string& a = t[k].text;
      if (a == "(" || a == "[") {
        ++d;
        continue;
      }
      if (a == ")" || a == "]") {
        --d;
        continue;
      }
      if (d != 0 || !ident_start(a[0])) continue;
      if (type_words.count(a) != 0 || control.count(a) != 0) continue;
      const std::string& next = tok(t, k + 1);
      // A base of member access (`msg.len`) is an object, not a size; its
      // trailing member is what gets collected (or skipped as a call).
      if (next == "(" || next == "<" || next == "::" || next == "." ||
          next == "->") {
        continue;
      }
      const std::string& prev = k > 0 ? t[k - 1].text : "";
      if (prev == "." || prev == "->" || prev == "::") continue;
      idents.insert(a);
    }
    if (idents.empty()) continue;

    const FnFrame& fn = frames.back();
    for (const std::string& id : idents) {
      bool validated = false;
      for (std::size_t k = fn.start; k < i && !validated; ++k) {
        if (check_macros.count(t[k].text) != 0 && tok(t, k + 1) == "(") {
          std::size_t m = k + 2;
          for (int cd = 1; m < t.size() && m < i && cd > 0; ++m) {
            if (t[m].text == "(") ++cd;
            if (t[m].text == ")") --cd;
            if (t[m].text == id) validated = true;
          }
          continue;
        }
        if (t[k].text != id) continue;
        const std::string& p = k > 0 ? t[k - 1].text : "";
        const std::string& n = tok(t, k + 1);
        if (p == "<" || p == ">" || n == "<" || n == ">") validated = true;
      }
      if (!validated) {
        ctx.report("alloc-before-validate", t[i].line,
                   "allocation sized by '" + id + "' in '" + fn.name +
                       "' before any bound check; validate the wire-derived "
                       "size against a cap first");
      }
    }
  }
}

/// detached-thread — detach() abandons the thread's lifetime: shutdown can
/// no longer prove it exited, and its captures dangle if the owner dies
/// first. Every thread in this codebase keeps a joinable handle.
void check_detached_thread(const Ctx& ctx) {
  const auto& t = ctx.tokens;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (t[i].text == "detach" &&
        (t[i - 1].text == "." || t[i - 1].text == "->") && tok(t, i + 1) == "(") {
      ctx.report("detached-thread", t[i].line,
                 "detach() abandons the thread's lifetime; keep a joinable "
                 "handle and join it on shutdown");
    }
  }
}

/// stale-suppression — runs after every other rule: an allow() that no rule
/// consulted is dead weight that silently re-licenses the violation if the
/// code regresses. Reported at the comment's own line, so a deliberate
/// `tdc-lint: allow(stale-suppression)` on that line can keep a
/// intentionally-speculative suppression (the one sanctioned escape hatch).
void check_stale_suppressions(const Ctx& ctx) {
  static const std::set<std::string> known = [] {
    const auto& ids = rule_ids();
    return std::set<std::string>(ids.begin(), ids.end());
  }();
  for (std::size_t idx = 0; idx < ctx.sc.allows.size(); ++idx) {
    const AllowRecord& a = ctx.sc.allows[idx];
    if (a.used) continue;
    if (known.count(a.rule) == 0) {
      ctx.report("stale-suppression", a.origin_line,
                 "suppression 'tdc-lint: allow(" + a.rule +
                     ")' names an unknown rule id");
    } else {
      ctx.report("stale-suppression", a.origin_line,
                 "suppression 'tdc-lint: allow(" + a.rule +
                     ")' no longer fires; remove it");
    }
  }
}

// The include-hygiene rule needs the *unscrubbed* lines (include paths are
// string literals, which scrub() blanks), so it reparses the raw content.

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

void check_includes_and_guard(const Ctx& ctx, const std::vector<std::string>& raw_lines) {
  for (std::size_t li = 0; li < raw_lines.size(); ++li) {
    const int lineno = static_cast<int>(li) + 1;
    // Use the scrubbed line to decide this is a real include directive (not
    // one inside a comment), then the raw line for the path text.
    const std::string& scrubbed =
        li < ctx.sc.lines.size() ? ctx.sc.lines[li] : raw_lines[li];
    std::size_t pos = scrubbed.find_first_not_of(" \t");
    if (pos == std::string::npos || scrubbed[pos] != '#') continue;
    std::size_t inc = scrubbed.find("include", pos + 1);
    if (inc == std::string::npos) continue;
    const std::string& raw = raw_lines[li];
    const std::size_t open = raw.find('"', inc);
    if (open == std::string::npos) continue;  // <system> include
    const std::size_t close = raw.find('"', open + 1);
    if (close == std::string::npos) continue;
    const std::string target = raw.substr(open + 1, close - open - 1);
    if (target.empty()) continue;
    if (target[0] == '.') {
      ctx.report("include-hygiene", lineno,
                 "relative include \"" + target +
                     "\"; use the project-relative form \"subsystem/file.h\"");
    } else if (target.find('/') == std::string::npos) {
      ctx.report("include-hygiene", lineno,
                 "bare include \"" + target +
                     "\" depends on the including file's directory; use the "
                     "project-relative form \"subsystem/file.h\"");
    } else if (in_library_path(ctx.path) &&
               (starts_with(target, "tests/") || starts_with(target, "bench/") ||
                starts_with(target, "examples/") || starts_with(target, "tools/"))) {
      // Only library code is barred from the non-library trees; a tool may
      // include another tool's header.
      ctx.report("include-hygiene", lineno,
                 "library code must not include \"" + target +
                     "\" from a non-library tree");
    }
  }

  // Headers must open with their include guard (or #pragma once) so they
  // stay safe to include from anywhere (self-sufficiency floor).
  if (is_header(ctx.path)) {
    for (std::size_t li = 0; li < ctx.sc.lines.size(); ++li) {
      const std::string& s = ctx.sc.lines[li];
      const std::size_t pos = s.find_first_not_of(" \t");
      if (pos == std::string::npos) continue;  // blank / comment-only
      const int lineno = static_cast<int>(li) + 1;
      if (s[pos] == '#') {
        std::size_t d = s.find_first_not_of(" \t", pos + 1);
        if (d != std::string::npos &&
            (s.compare(d, 6, "ifndef") == 0 || s.compare(d, 6, "pragma") == 0)) {
          break;  // guarded
        }
      }
      ctx.report("include-hygiene", lineno,
                 "header does not open with an include guard (#ifndef or "
                 "#pragma once)");
      break;
    }
  }
}

}  // namespace

// ------------------------------------------------------------------ driver

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "determinism",        "iostream-print",     "naked-throw",
      "unordered-iteration", "include-hygiene",    "memory-order-audit",
      "blocking-under-lock", "alloc-before-validate", "detached-thread",
      "stale-suppression"};
  return ids;
}

std::vector<Finding> lint_file(const std::string& path, const std::string& content) {
  std::vector<Finding> findings;
  Scrubbed sc = scrub(content);
  const std::vector<Token> tokens = tokenize(sc);
  const Ctx ctx{path, sc, tokens, findings};
  check_determinism(ctx);
  check_iostream_print(ctx);
  check_naked_throw(ctx);
  check_unordered_iteration(ctx);
  check_includes_and_guard(ctx, split_lines(content));
  check_memory_order(ctx);
  check_blocking_under_lock(ctx);
  check_alloc_before_validate(ctx);
  check_detached_thread(ctx);
  // Must run last: it audits which allow() comments the rules above used.
  check_stale_suppressions(ctx);
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return findings;
}

std::vector<Finding> lint_tree(const std::string& repo_root,
                               const std::vector<std::string>& subdirs,
                               std::size_t* files_scanned) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path base = fs::path(repo_root) / sub;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc") {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  if (files_scanned != nullptr) *files_scanned = files.size();

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string rel =
        fs::relative(file, fs::path(repo_root)).generic_string();
    std::vector<Finding> one = lint_file(rel, buf.str());
    findings.insert(findings.end(), one.begin(), one.end());
  }
  return findings;
}

std::string format_report(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.path + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

}  // namespace tdc::lint
