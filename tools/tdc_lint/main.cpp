#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "tdc_lint/lint.h"

// tdc_lint <repo-root> [subdir...]
//
// Lints every C++ source under <repo-root>/<subdir> (default: src) against
// the project rules (docs/ALGORITHMS.md §16). Exit code 0 when clean, 1 on
// violations, 2 on usage errors. CI and the `tdc_lint_src` ctest run it
// over src/, tools/ and examples/; the fixture suite (tests/lint_test) pins
// each rule's id and line reporting.
int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: tdc_lint <repo-root> [subdir...]\n");
    return 2;
  }
  const std::string root = argv[1];
  std::vector<std::string> subdirs;
  for (int i = 2; i < argc; ++i) subdirs.push_back(argv[i]);
  if (subdirs.empty()) subdirs.push_back("src");

  std::size_t files = 0;
  const std::vector<tdc::lint::Finding> findings =
      tdc::lint::lint_tree(root, subdirs, &files);
  if (files == 0) {
    std::fprintf(stderr, "tdc_lint: no C++ sources found under %s\n", root.c_str());
    return 2;
  }
  if (!findings.empty()) {
    const std::string report = tdc::lint::format_report(findings);
    std::fputs(report.c_str(), stdout);
    // Per-rule totals so a CI log shows the violation mix at a glance.
    std::map<std::string, std::size_t> per_rule;
    for (const tdc::lint::Finding& f : findings) ++per_rule[f.rule];
    for (const auto& [rule, count] : per_rule) {
      std::printf("tdc_lint:   %-22s %zu\n", rule.c_str(), count);
    }
  }
  std::printf("tdc_lint: %zu violation(s) in %zu file(s) scanned\n",
              findings.size(), files);
  return findings.empty() ? 0 : 1;
}
