#ifndef TDC_TOOLS_TDC_LINT_LINT_H
#define TDC_TOOLS_TDC_LINT_LINT_H

#include <string>
#include <vector>

/// tdc_lint — the project's custom static checker.
///
/// A deliberately dependency-free token scanner (no libclang): every rule
/// works off a comment/string-stripped token stream plus the raw lines, so
/// the tool builds everywhere the project builds and runs in milliseconds
/// over the whole tree. Rules are scoped by project-relative path; see
/// docs/ALGORITHMS.md §16 for the rule catalogue, the inline suppression
/// syntax (an allow(<rule>) comment tag, which covers its own line and the
/// next, and is itself audited — a suppression that no longer fires is a
/// stale-suppression violation), and the `// tdc-sync:` justification
/// grammar the memory-order-audit rule enforces on atomic declarations.
namespace tdc::lint {

/// One rule violation. `path` is project-relative with forward slashes,
/// `line` is 1-based, `rule` is the stable rule id the fixtures and the
/// report format use.
struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Stable ids of every implemented rule, in report order.
const std::vector<std::string>& rule_ids();

/// Lints one file given its *project-relative* path (which decides rule
/// scope: e.g. "src/lzw/encoder.cpp" is a deterministic path) and its
/// content. Pure function — no filesystem access — so tests can feed
/// fixture content under fabricated paths.
std::vector<Finding> lint_file(const std::string& path, const std::string& content);

/// Walks `repo_root`/<subdir> for C++ sources (.h/.hpp/.cpp/.cc) in
/// deterministic (sorted) order and lints each under its project-relative
/// path. `files_scanned`, when non-null, receives the file count.
std::vector<Finding> lint_tree(const std::string& repo_root,
                               const std::vector<std::string>& subdirs,
                               std::size_t* files_scanned = nullptr);

/// "path:line: [rule] message" — one line per finding.
std::string format_report(const std::vector<Finding>& findings);

}  // namespace tdc::lint

#endif  // TDC_TOOLS_TDC_LINT_LINT_H
