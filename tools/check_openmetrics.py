#!/usr/bin/env python3
"""Minimal OpenMetrics text-format validator for CI smoke tests.

Checks the subset tdcd's `metrics` op emits:

  * every sample line belongs to a family declared by a `# TYPE` line;
  * counter samples use the `<family>_total` suffix;
  * gauge samples use the bare family name;
  * summary samples are `<family>{quantile="q"}` with q in [0, 1],
    plus `<family>_sum` / `<family>_count`;
  * sample values parse as finite numbers;
  * the exposition ends with exactly one `# EOF` line.

Usage: check_openmetrics.py <file>   (or `-` / no argument for stdin)
"""

import math
import re
import sys

TYPE_RE = re.compile(r"^# TYPE ([a-zA-Z_][a-zA-Z0-9_]*) (counter|gauge|summary)$")
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_][a-zA-Z0-9_]*)(\{quantile=\"([^\"]+)\"\})? (\S+)$"
)


def fail(lineno, line, why):
    sys.stderr.write(f"line {lineno}: {why}: {line!r}\n")
    sys.exit(1)


def main():
    path = sys.argv[1] if len(sys.argv) > 1 else "-"
    text = sys.stdin.read() if path == "-" else open(path, encoding="utf-8").read()
    if not text.endswith("# EOF\n"):
        sys.stderr.write("exposition does not end with '# EOF'\n")
        sys.exit(1)

    families = {}  # name -> type
    samples = 0
    lines = text.splitlines()
    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            if lineno != len(lines):
                fail(lineno, line, "'# EOF' before the end of the exposition")
            continue
        m = TYPE_RE.match(line)
        if m:
            name, kind = m.group(1), m.group(2)
            if name in families:
                fail(lineno, line, f"family {name} declared twice")
            families[name] = kind
            continue
        if line.startswith("#"):
            continue  # other comment lines (e.g. the --follow rate readout)
        m = SAMPLE_RE.match(line)
        if not m:
            fail(lineno, line, "unparseable sample line")
        name, quantile, value = m.group(1), m.group(3), m.group(4)
        try:
            v = float(value)
        except ValueError:
            fail(lineno, line, f"bad sample value {value!r}")
        if not math.isfinite(v):
            fail(lineno, line, f"non-finite sample value {value!r}")

        # Resolve the sample back to its declared family.
        if quantile is not None:
            if families.get(name) != "summary":
                fail(lineno, line, f"quantile sample for non-summary {name!r}")
            q = float(quantile)
            if not 0.0 <= q <= 1.0:
                fail(lineno, line, f"quantile {q} outside [0, 1]")
        elif name.endswith("_total") and name[: -len("_total")] in families:
            if families[name[: -len("_total")]] != "counter":
                fail(lineno, line, f"_total sample for non-counter {name!r}")
        elif name.endswith("_sum") and name[: -len("_sum")] in families:
            if families[name[: -len("_sum")]] != "summary":
                fail(lineno, line, f"_sum sample for non-summary {name!r}")
        elif name.endswith("_count") and name[: -len("_count")] in families:
            if families[name[: -len("_count")]] != "summary":
                fail(lineno, line, f"_count sample for non-summary {name!r}")
        elif name in families:
            if families[name] != "gauge":
                fail(lineno, line, f"bare sample for non-gauge {name!r}")
        else:
            fail(lineno, line, f"sample for undeclared family {name!r}")
        samples += 1

    if not families:
        sys.stderr.write("no metric families declared\n")
        sys.exit(1)
    counters = sum(1 for k in families.values() if k == "counter")
    gauges = sum(1 for k in families.values() if k == "gauge")
    summaries = sum(1 for k in families.values() if k == "summary")
    print(
        f"ok: {len(families)} families ({counters} counters, {gauges} gauges, "
        f"{summaries} summaries), {samples} samples"
    )


if __name__ == "__main__":
    main()
