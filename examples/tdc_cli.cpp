// Command-line front end — the "compression tool" box of the paper's
// Fig. 1 as a downstream user would run it:
//
//   tdc_cli gen <circuit> <out.tests>            synthesize + ATPG a suite
//                                                circuit into a cube file
//   tdc_cli compress <in.tests>... <out|--out-dir D>  [--dict N] [--char C]
//                                                [--entry E] [--variable]
//                                                [--v1] [--chunk-bytes N]
//                                                [--jobs N] (multi-input)
//   tdc_cli decompress <in.tdclzw> <out.tests>   expand to full vectors
//   tdc_cli inspect <file>                       describe either format
//                                                (alias: info)
//   tdc_cli verify <in.tdclzw>...                full integrity + decode
//                                                check; nonzero on damage;
//                                                [--jobs N] in parallel
//   tdc_cli batch <manifest>                     pipelined multi-job engine
//                                                [--jobs N] [--fail-fast]
//                                                [--out-dir D] [--no-verify]
//                                                [--metrics out.json]
//   tdc_cli stats <input> [--out F]              telemetry JSON for a
//                                                .tests (encode+decode) or
//                                                .tdclzw (decode) stream;
//                                                netlist structural report
//                                                for .bench / .v
//   tdc_cli convert <in> <out>                   .bench <-> .v
//   tdc_cli wave <in.tdclzw> <out.vcd> [k]       GTKWave dump of the
//                                                decompressor running the
//                                                image at clock ratio k
//   tdc_cli serve <socket>                       tdcd daemon: framed
//                                                compress / decompress /
//                                                inspect / verify / stats
//                                                requests over a unix
//                                                socket, multiplexed onto
//                                                the engine worker pool;
//                                                SIGINT/SIGTERM drain and
//                                                exit 0
//   tdc_cli client <socket> <op> [...]           talk to a running daemon
//                                                with the same ops (plus
//                                                ping and stats)
//
// Every subcommand additionally accepts `--trace <file>` (or $TDC_TRACE):
// the whole invocation is recorded as Chrome trace_event JSON, viewable in
// Perfetto / chrome://tracing.
//
// The .tests format is the plain-text cube format of scan/testset_io.h;
// .tdclzw is the binary compressed container of lzw/stream_io.h (TDCLZW2
// by default, TDCLZW1 with --v1). Flags share one parser (exp/args.h).
#include <algorithm>
#include <array>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "codec/select.h"
#include "engine/engine.h"
#include "engine/manifest.h"
#include "engine/metrics.h"
#include "exp/args.h"
#include "exp/flow.h"
#include "exp/thread_pool.h"
#include "hw/decompressor_rtl.h"
#include "lzw/stream_io.h"
#include "lzw/verify.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "netlist/verilog_io.h"
#include "obs/json.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/openmetrics.h"
#include "obs/trace.h"
#include "scan/testset_io.h"
#include "service/client.h"
#include "service/server.h"

namespace {

using namespace tdc;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tdc_cli gen <circuit> <out.tests>\n"
               "  tdc_cli compress <in.tests> <out.tdclzw> [--dict N] [--char C]"
               " [--entry E]\n"
               "              [--variable] [--v1] [--chunk-bytes N]"
               " [--stats <out.json>]\n"
               "              [--codec <name|auto|race>] [--chunk-trits N]"
               " (multi-codec TDCLZW2 v3)\n"
               "  tdc_cli compress <in.tests>... --out-dir <dir> [--jobs N] [...]\n"
               "  tdc_cli decompress <in.tdclzw> <out.tests>\n"
               "  tdc_cli inspect <file>        (alias: info)\n"
               "  tdc_cli verify <in.tdclzw>... [--jobs N]\n"
               "  tdc_cli batch <manifest> [--jobs N] [--fail-fast] [--no-verify]\n"
               "              [--out-dir <dir>] [--queue N] [--metrics <out.json>]\n"
               "  tdc_cli stats <in.tests|in.tdclzw|netlist.bench|netlist.v>"
               " [--out <f>]\n"
               "              [--dict N] [--char C] [--entry E] [--variable]\n"
               "  tdc_cli stats <socket> --openmetrics [--follow <sec>]"
               " [--samples N]\n"
               "  tdc_cli convert <in.bench|in.v> <out.bench|out.v>\n"
               "  tdc_cli wave <in.tdclzw> <out.vcd> [clock_ratio]\n"
               "  tdc_cli serve <socket> [--jobs N] [--max-in-flight N]\n"
               "              [--max-connections N] [--no-verify]"
               " [--io-timeout-ms N]\n"
               "              [--log-level <debug|info|warn|error|off>]"
               " [--log-rate N]\n"
               "              [--metrics-log <file>] [--metrics-interval-ms N]\n"
               "  tdc_cli client <socket> ping\n"
               "  tdc_cli client <socket> compress <in.tests> <out.tdclzw>"
               " [--dict N]\n"
               "              [--char C] [--entry E] [--variable] [--v1]"
               " [--chunk-bytes N]\n"
               "              [--codec <name|auto|race>] [--chunk-trits N]\n"
               "  tdc_cli client <socket> decompress <in.tdclzw> <out.tests>\n"
               "  tdc_cli client <socket> verify <in.tdclzw>\n"
               "  tdc_cli client <socket> inspect <file>\n"
               "  tdc_cli client <socket> stats [--out <f>] [--openmetrics]\n"
               "              client flags: [--connect-wait-ms N]"
               " [--io-timeout-ms N] [--trace-id <id>]\n"
               "global: --trace <file> (or $TDC_TRACE) records a Chrome trace\n");
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

netlist::Netlist load_netlist(const std::string& path) {
  if (ends_with(path, ".v")) return netlist::parse_verilog_file(path);
  return netlist::parse_bench_file(path);
}

/// Rejects leftover flags, then checks the positional count.
bool accept(exp::Args& args, std::size_t min_pos, std::size_t max_pos,
            std::vector<std::string>* pos) {
  if (!args.unknown().empty()) {
    std::fprintf(stderr, "unknown flag: %s\n", args.unknown().c_str());
    return false;
  }
  *pos = args.positional();
  return pos->size() >= min_pos && pos->size() <= max_pos;
}

std::string container_line(const lzw::ContainerInfo& c) {
  char buf[160];
  if (c.version >= 3) {
    std::snprintf(buf, sizeof buf,
                  "container: TDCLZW2 v3 multi-codec (%llu B header + %llu B "
                  "payload, header+payload+record CRC32, %u records)",
                  static_cast<unsigned long long>(c.header_bytes),
                  static_cast<unsigned long long>(c.payload_bytes),
                  c.chunk_count);
  } else if (!c.crc_protected()) {
    std::snprintf(buf, sizeof buf,
                  "container: TDCLZW1 legacy (%llu B header + %llu B payload, "
                  "no integrity protection)",
                  static_cast<unsigned long long>(c.header_bytes),
                  static_cast<unsigned long long>(c.payload_bytes));
  } else if (c.chunk_count == 0) {
    std::snprintf(buf, sizeof buf,
                  "container: TDCLZW2 (%llu B header + %llu B payload, "
                  "header+payload CRC32, unchunked)",
                  static_cast<unsigned long long>(c.header_bytes),
                  static_cast<unsigned long long>(c.payload_bytes));
  } else {
    std::snprintf(buf, sizeof buf,
                  "container: TDCLZW2 (%llu B header + %llu B payload, "
                  "header+payload CRC32, %u chunks x %u B)",
                  static_cast<unsigned long long>(c.header_bytes),
                  static_cast<unsigned long long>(c.payload_bytes),
                  c.chunk_count, c.chunk_bytes);
  }
  return buf;
}

int cmd_wave(exp::Args& args) {
  std::vector<std::string> pos;
  if (!accept(args, 2, 3, &pos)) return usage();
  const lzw::CompressedImage image = lzw::read_image_file(pos[0]);
  const std::uint32_t k =
      pos.size() == 3 ? static_cast<std::uint32_t>(std::stoul(pos[2])) : 10;

  // Rebuild an EncodeResult view of the image for the RTL model.
  lzw::EncodeResult encoded;
  encoded.config = image.config;
  encoded.original_bits = image.original_bits;
  const auto decoded = image.decode();  // validates the stream
  encoded.stream = image.stream;
  // The RTL model reads codes from the stream; it only needs the count.
  encoded.codes.resize(image.code_count);

  std::ofstream out(pos[1]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", pos[1].c_str());
    return 1;
  }
  hw::VcdWriter vcd(out, "lzw_decompressor");
  const hw::DecompressorRtl rtl(hw::HwConfig{.lzw = image.config, .clock_ratio = k});
  const auto run = rtl.run(encoded, &vcd);
  std::printf("%s: %llu internal cycles at %ux -> %s (%llu scan bits)\n",
              pos[0].c_str(), static_cast<unsigned long long>(run.internal_cycles),
              k, pos[1].c_str(),
              static_cast<unsigned long long>(decoded.bits.size()));
  return 0;
}

/// Deterministic per-stream telemetry JSON: identity + ratio breakdown up
/// front, then the encoder/decoder instrument sections. No timestamps, no
/// environment — byte-identical for the same input and flags on every run.
std::string stream_stats_json(const std::string& input, const char* source,
                              const lzw::LzwConfig& config,
                              std::uint64_t original_bits,
                              std::uint64_t compressed_bits,
                              std::uint64_t code_count,
                              const lzw::ContainerInfo* container,
                              const lzw::EncoderTelemetry* encoder,
                              const lzw::DecoderTelemetry* decoder) {
  const double ratio =
      original_bits == 0
          ? 0.0
          : (1.0 - static_cast<double>(compressed_bits) /
                       static_cast<double>(original_bits)) *
                100.0;
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"input\": \"%s\",\n"
                "  \"source\": \"%s\",\n"
                "  \"config\": \"%s%s\",\n"
                "  \"original_bits\": %llu,\n"
                "  \"compressed_bits\": %llu,\n"
                "  \"codes\": %llu,\n"
                "  \"ratio_percent\": %.3f",
                obs::json_escape(input).c_str(), source,
                obs::json_escape(config.describe()).c_str(),
                config.variable_width ? " variable-width" : "",
                static_cast<unsigned long long>(original_bits),
                static_cast<unsigned long long>(compressed_bits),
                static_cast<unsigned long long>(code_count), ratio);
  std::string json = buf;
  if (container != nullptr) {
    std::snprintf(buf, sizeof buf,
                  ",\n  \"container\": {\"version\": %u, \"header_bytes\": %llu,"
                  " \"payload_bytes\": %llu, \"chunk_bytes\": %u,"
                  " \"chunk_count\": %u}",
                  container->version,
                  static_cast<unsigned long long>(container->header_bytes),
                  static_cast<unsigned long long>(container->payload_bytes),
                  container->chunk_bytes, container->chunk_count);
    json += buf;
  }
  if (encoder != nullptr) json += ",\n  \"encoder\": " + encoder->to_json();
  if (decoder != nullptr) json += ",\n  \"decoder\": " + decoder->to_json();
  json += "\n}\n";
  return json;
}

std::string multicodec_stats_json(const std::string& input,
                                  const std::string& mode,
                                  const lzw::LzwConfig& config,
                                  const codec::EncodedChunks& chunks);

/// Writes `text` to `--out <file>` when given, stdout otherwise.
int emit_text(const std::optional<std::string>& out_path, const std::string& text) {
  if (!out_path) {
    std::printf("%s", text.c_str());
    return 0;
  }
  std::ofstream out(*out_path);
  if (!(out << text)) {
    std::fprintf(stderr, "cannot write %s\n", out_path->c_str());
    return 1;
  }
  return 0;
}

/// Sums the per-op request counters out of one OpenMetrics scrape —
/// `tdc_serve_<op>_requests_total N` lines — so --follow can show a live
/// serve-wide request rate without a second wire format.
std::uint64_t sum_request_totals(const std::string& exposition) {
  std::uint64_t total = 0;
  std::istringstream lines(exposition);
  std::string line;
  const std::string prefix = "tdc_serve_";
  const std::string marker = "_requests_total ";
  while (std::getline(lines, line)) {
    if (line.compare(0, prefix.size(), prefix) != 0) continue;
    const std::size_t at = line.find(marker);
    if (at == std::string::npos) continue;
    total += std::strtoull(line.c_str() + at + marker.size(), nullptr, 10);
  }
  return total;
}

/// Scrapes the daemon's `metrics` op and prints the OpenMetrics payload.
/// With follow_sec > 0, repeats every follow_sec seconds (samples == 0 means
/// forever) and appends a `# serve.requests …/s` comment line computed from
/// an obs::RateWindow over the scraped request counters.
int scrape_openmetrics(const std::string& socket_path, double follow_sec,
                       std::uint64_t samples, int connect_wait_ms,
                       int io_timeout_ms) {
  service::ClientOptions options;
  options.socket_path = socket_path;
  options.connect_wait_ms = connect_wait_ms;
  options.io_timeout_ms = io_timeout_ms;
  Result<service::Client> client = service::Client::connect(options);
  if (!client.ok()) {
    std::fprintf(stderr, "%s: %s\n", socket_path.c_str(),
                 client.error().describe().c_str());
    return 1;
  }
  obs::RateWindow rate;
  const auto epoch = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; samples == 0 || i < samples; ++i) {
    if (i > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<std::int64_t>(follow_sec * 1000.0)));
    }
    Result<service::Frame> resp = client.value().call("metrics");
    if (!resp.ok()) {
      std::fprintf(stderr, "%s: %s\n", socket_path.c_str(),
                   resp.error().describe().c_str());
      return 1;
    }
    std::fputs(resp.value().payload.c_str(), stdout);
    if (follow_sec > 0) {
      const auto now_ms = static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - epoch)
              .count());
      rate.sample(now_ms, sum_request_totals(resp.value().payload));
      std::printf("# serve.requests %.1f/s over %zu samples\n",
                  rate.per_second(), rate.size());
    }
    std::fflush(stdout);
    if (follow_sec <= 0) break;  // single shot even if --samples says more
  }
  return 0;
}

int cmd_stats(exp::Args& args) {
  // --openmetrics turns the positional into a daemon socket: scrape the
  // live registry instead of analyzing a file.
  if (args.flag("--openmetrics")) {
    const std::optional<std::string> follow = args.value("--follow");
    const double follow_sec =
        follow ? std::strtod(follow->c_str(), nullptr) : 0.0;
    const std::uint64_t samples = args.u32("--samples", follow ? 0 : 1);
    const int connect_wait_ms =
        static_cast<int>(args.u32("--connect-wait-ms", 5000));
    const int io_timeout_ms =
        static_cast<int>(args.u32("--io-timeout-ms", 60000));
    std::vector<std::string> pos;
    if (!accept(args, 1, 1, &pos)) return usage();
    if (follow && follow_sec <= 0.0) {
      std::fprintf(stderr, "bad --follow interval: %s\n", follow->c_str());
      return usage();
    }
    return scrape_openmetrics(pos[0], follow_sec, samples, connect_wait_ms,
                              io_timeout_ms);
  }

  lzw::LzwConfig config;
  config.variable_width = args.flag("--variable");
  config.dict_size = args.u32("--dict", config.dict_size);
  config.char_bits = args.u32("--char", config.char_bits);
  config.entry_bits = args.u32("--entry", config.entry_bits);
  const std::optional<std::string> out_path = args.value("--out");
  std::vector<std::string> pos;
  if (!accept(args, 1, 1, &pos)) return usage();
  const std::string& path = pos[0];

  // Netlists keep the historical structural report.
  if (ends_with(path, ".bench") || ends_with(path, ".v")) {
    const netlist::Netlist nl = load_netlist(path);
    std::printf("%s", netlist::analyze(nl).report().c_str());
    return 0;
  }

  // A compressed container: decode it and report the expansion-side numbers.
  if (Result<lzw::CompressedImage> image = lzw::try_read_image_file(path);
      image.ok()) {
    const lzw::CompressedImage& img = image.value();
    if (img.multi_codec()) {
      // v3: validate through the registry, report the per-record codecs.
      const Result<bits::TritVector> decoded = codec::decode_image(img);
      if (!decoded.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     decoded.error().describe().c_str());
        return 1;
      }
      codec::EncodedChunks chunks;
      chunks.original_bits = img.original_bits;
      for (const lzw::ChunkRecord& r : img.chunks) {
        const codec::Codec* c = codec::codec_for_id(r.codec_id);
        codec::ChunkChoice choice;
        choice.codec_id = r.codec_id;
        choice.codec = c != nullptr ? codec::to_string(c->id())
                                    : "id" + std::to_string(r.codec_id);
        choice.trits = r.original_trits;
        choice.payload_bytes = r.payload.size();
        chunks.payload_bytes += r.payload.size();
        chunks.choices.push_back(std::move(choice));
      }
      chunks.stats_bits = chunks.payload_bytes * 8;
      return emit_text(out_path,
                       multicodec_stats_json(path, "container", img.config, chunks));
    }
    const Result<lzw::DecodeResult> decoded = img.try_decode();
    if (!decoded.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   decoded.error().describe().c_str());
      return 1;
    }
    return emit_text(out_path,
                     stream_stats_json(path, "container", img.config,
                                       img.original_bits, img.stream.bit_count(),
                                       img.code_count, &img.container, nullptr,
                                       &decoded.value().telemetry));
  }

  // A raw test set: run the full encode + decode cycle and report both sides.
  config.validate();
  const scan::TestSet tests = scan::read_tests_file(path);
  const bits::TritVector stream = tests.serialize();
  const auto encoded = lzw::Encoder(config).encode(stream);
  const auto decoded =
      lzw::Decoder(config).decode(encoded.codes, encoded.original_bits);
  return emit_text(out_path,
                   stream_stats_json(path, "tests", config, encoded.original_bits,
                                     encoded.compressed_bits(),
                                     encoded.codes.size(), nullptr,
                                     &encoded.telemetry, &decoded.telemetry));
}

int cmd_convert(exp::Args& args) {
  std::vector<std::string> pos;
  if (!accept(args, 2, 2, &pos)) return usage();
  const netlist::Netlist nl = load_netlist(pos[0]);
  std::ofstream out(pos[1]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", pos[1].c_str());
    return 1;
  }
  if (ends_with(pos[1], ".v")) {
    netlist::write_verilog(out, nl);
  } else {
    netlist::write_bench(out, nl);
  }
  std::printf("%s -> %s (%u nodes)\n", pos[0].c_str(), pos[1].c_str(),
              nl.gate_count());
  return 0;
}

int cmd_gen(exp::Args& args) {
  std::vector<std::string> pos;
  if (!accept(args, 2, 2, &pos)) return usage();
  const exp::PreparedCircuit pc = exp::prepare(pos[0]);
  scan::write_tests_file(pos[1], pc.tests);
  std::printf("%s: %llu patterns x %u bits (%.1f%% X), coverage %.2f%% -> %s\n",
              pos[0].c_str(),
              static_cast<unsigned long long>(pc.tests.pattern_count()),
              pc.tests.width, 100.0 * pc.tests.x_density(), pc.fault_coverage,
              pos[1].c_str());
  return 0;
}

/// One verified compress of `in` to `out`; returns the success line plus the
/// stream's telemetry JSON (for --stats), or throws. Shared by the
/// single-file and the parallel --out-dir paths.
struct CompressOutcome {
  std::string line;
  std::string stats_json;
};

/// "auto[lzw x2, bwt x1]" — the mode plus the winner histogram in chunk
/// order of first appearance.
std::string choices_summary(const std::string& mode,
                            const std::vector<codec::ChunkChoice>& choices) {
  std::vector<std::pair<std::string, std::size_t>> counts;
  for (const codec::ChunkChoice& c : choices) {
    bool found = false;
    for (auto& [name, n] : counts) {
      if (name == c.codec) { ++n; found = true; break; }
    }
    if (!found) counts.emplace_back(c.codec, 1);
  }
  std::string out = mode + "[";
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (i != 0) out += ", ";
    out += counts[i].first + " x" + std::to_string(counts[i].second);
  }
  return out + "]";
}

/// Deterministic per-codec accounting for the multi-codec --stats output:
/// chunk choices in order, then totals per codec — the one place compress
/// reports how many bytes each backend contributed.
std::string multicodec_stats_json(const std::string& input,
                                  const std::string& mode,
                                  const lzw::LzwConfig& config,
                                  const codec::EncodedChunks& chunks) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\n"
                "  \"input\": \"%s\",\n"
                "  \"source\": \"tests\",\n"
                "  \"codec_mode\": \"%s\",\n"
                "  \"config\": \"%s%s\",\n"
                "  \"original_bits\": %llu,\n"
                "  \"compressed_bits\": %llu,\n"
                "  \"payload_bytes\": %llu,\n"
                "  \"ratio_percent\": %.3f,\n",
                obs::json_escape(input).c_str(), obs::json_escape(mode).c_str(),
                obs::json_escape(config.describe()).c_str(),
                config.variable_width ? " variable-width" : "",
                static_cast<unsigned long long>(chunks.original_bits),
                static_cast<unsigned long long>(chunks.stats_bits),
                static_cast<unsigned long long>(chunks.payload_bytes),
                codec::ratio_percent(chunks.original_bits, chunks.stats_bits));
  std::string json = buf;
  json += "  \"chunks\": [";
  for (std::size_t i = 0; i < chunks.choices.size(); ++i) {
    const codec::ChunkChoice& c = chunks.choices[i];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"codec\": \"%s\", \"trits\": %llu,"
                  " \"stats_bits\": %llu, \"payload_bytes\": %llu}",
                  i == 0 ? "" : ",", c.codec.c_str(),
                  static_cast<unsigned long long>(c.trits),
                  static_cast<unsigned long long>(c.stats_bits),
                  static_cast<unsigned long long>(c.payload_bytes));
    json += buf;
  }
  json += "\n  ],\n  \"per_codec\": {";
  std::vector<std::pair<std::string, std::array<std::uint64_t, 4>>> totals;
  for (const codec::ChunkChoice& c : chunks.choices) {
    bool found = false;
    for (auto& [name, t] : totals) {
      if (name == c.codec) {
        t[0] += 1; t[1] += c.trits; t[2] += c.stats_bits; t[3] += c.payload_bytes;
        found = true;
        break;
      }
    }
    if (!found) {
      totals.emplace_back(c.codec,
                          std::array<std::uint64_t, 4>{1, c.trits, c.stats_bits,
                                                       c.payload_bytes});
    }
  }
  for (std::size_t i = 0; i < totals.size(); ++i) {
    std::snprintf(buf, sizeof buf,
                  "%s\n    \"%s\": {\"chunks\": %llu, \"original_trits\": %llu,"
                  " \"stats_bits\": %llu, \"payload_bytes\": %llu}",
                  i == 0 ? "" : ",", totals[i].first.c_str(),
                  static_cast<unsigned long long>(totals[i].second[0]),
                  static_cast<unsigned long long>(totals[i].second[1]),
                  static_cast<unsigned long long>(totals[i].second[2]),
                  static_cast<unsigned long long>(totals[i].second[3]));
    json += buf;
  }
  json += "\n  }\n}\n";
  return json;
}

CompressOutcome compress_one(const std::string& in, const std::string& out,
                             const lzw::LzwConfig& config,
                             const lzw::ContainerOptions& container,
                             const std::string& codec_mode,
                             std::uint32_t chunk_trits) {
  obs::TraceSpan span("cli.compress");
  const scan::TestSet tests = scan::read_tests_file(in);
  const bits::TritVector stream = tests.serialize();

  if (!codec_mode.empty()) {
    // Multi-codec path: per-chunk selection into a TDCLZW2 v3 container,
    // verified end to end through the registry before the file is written.
    codec::SelectOptions options =
        codec::parse_codec_mode(codec_mode).value_or_throw();
    options.lzw = config;
    if (chunk_trits != 0) options.chunk_trits = chunk_trits;
    obs::MetricsRegistry metrics;
    const codec::EncodedChunks chunks =
        codec::encode_chunks(stream, options, &metrics).value_or_throw();
    const bits::TritVector decoded =
        codec::decode_records(chunks.records, chunks.original_bits)
            .value_or_throw();
    if (!decoded.fully_specified() || !stream.covered_by(decoded)) {
      throw std::runtime_error(
          "internal verification failed: expansion does not cover the input");
    }
    lzw::write_image_v3_file(out, config, chunks.original_bits,
                             options.chunk_trits, chunks.records);
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%s: %llu -> %llu bits (ratio %.2f%%, %s, codec %s, TDCLZW2 v3) -> %s",
        in.c_str(), static_cast<unsigned long long>(chunks.original_bits),
        static_cast<unsigned long long>(chunks.stats_bits),
        codec::ratio_percent(chunks.original_bits, chunks.stats_bits),
        config.describe().c_str(),
        choices_summary(codec_mode, chunks.choices).c_str(), out.c_str());
    CompressOutcome outcome;
    outcome.line = buf;
    outcome.stats_json = multicodec_stats_json(in, codec_mode, config, chunks);
    return outcome;
  }

  const auto encoded = lzw::Encoder(config).encode(stream);
  const auto report = lzw::verify_roundtrip(stream, encoded);
  if (!report.ok) {
    throw std::runtime_error("internal verification failed: " + report.error);
  }
  lzw::write_image_file(out, encoded, container);
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "%s: %llu -> %llu bits (ratio %.2f%%, %s, TDCLZW%u) -> %s",
                in.c_str(), static_cast<unsigned long long>(encoded.original_bits),
                static_cast<unsigned long long>(encoded.compressed_bits()),
                encoded.ratio_percent(), config.describe().c_str(),
                container.version, out.c_str());
  CompressOutcome outcome;
  outcome.line = buf;
  outcome.stats_json = stream_stats_json(in, "tests", config,
                                         encoded.original_bits,
                                         encoded.compressed_bits(),
                                         encoded.codes.size(), nullptr,
                                         &encoded.telemetry, nullptr);
  return outcome;
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

int cmd_compress(exp::Args& args) {
  lzw::LzwConfig config;
  config.variable_width = args.flag("--variable");
  config.dict_size = args.u32("--dict", config.dict_size);
  config.char_bits = args.u32("--char", config.char_bits);
  config.entry_bits = args.u32("--entry", config.entry_bits);
  lzw::ContainerOptions container;
  if (args.flag("--v1")) container.version = 1;
  container.chunk_bytes = args.u32("--chunk-bytes", container.chunk_bytes);
  const std::string codec_mode = args.value("--codec").value_or("");
  const std::uint32_t chunk_trits = args.u32("--chunk-trits", 0);
  const std::optional<std::string> out_dir = args.value("--out-dir");
  const std::optional<std::string> stats_path = args.value("--stats");
  const unsigned jobs = args.jobs();

  std::vector<std::string> pos;
  if (!accept(args, out_dir ? 1 : 2, out_dir ? 9999 : 2, &pos)) return usage();
  config.validate();
  if (!codec_mode.empty()) {
    if (const auto mode = codec::parse_codec_mode(codec_mode); !mode.ok()) {
      std::fprintf(stderr, "%s\n", mode.error().describe().c_str());
      return 2;
    }
    if (container.version == 1 ||
        container.chunk_bytes != lzw::ContainerOptions{}.chunk_bytes) {
      std::fprintf(stderr,
                   "--codec writes a TDCLZW2 v3 container; drop --v1/--chunk-bytes\n");
      return 2;
    }
  } else if (chunk_trits != 0) {
    std::fprintf(stderr, "--chunk-trits needs --codec\n");
    return 2;
  }

  // --stats: per-stream telemetry JSON, one object per input in argument
  // order — byte-identical for any --jobs count.
  const auto write_stats = [&](const std::vector<CompressOutcome>& outcomes) {
    if (!stats_path) return 0;
    std::string json;
    if (outcomes.size() == 1) {
      json = outcomes[0].stats_json;
    } else {
      json = "[\n";
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        json += outcomes[i].stats_json;
        if (i + 1 < outcomes.size()) {
          json.pop_back();  // swap the trailing newline for a separator
          json += ",\n";
        }
      }
      json += "]\n";
    }
    return emit_text(stats_path, json);
  };

  if (!out_dir) {
    const CompressOutcome outcome =
        compress_one(pos[0], pos[1], config, container, codec_mode, chunk_trits);
    std::printf("%s\n", outcome.line.c_str());
    return write_stats({outcome});
  }

  // --out-dir: every positional is an input; <dir>/<stem>.tdclzw each,
  // compressed across the pool, lines printed in input order.
  std::filesystem::create_directories(*out_dir);
  exp::ThreadPool pool(jobs);
  const auto outcomes =
      exp::parallel_map(pool, pos, [&](const std::string& in) {
        std::string stem = basename_of(in);
        if (const std::size_t dot = stem.rfind(".tests");
            dot != std::string::npos && dot == stem.size() - 6) {
          stem.resize(dot);
        }
        return compress_one(in, *out_dir + "/" + stem + ".tdclzw", config,
                            container, codec_mode, chunk_trits);
      });
  for (const CompressOutcome& o : outcomes) std::printf("%s\n", o.line.c_str());
  return write_stats(outcomes);
}

int cmd_decompress(exp::Args& args) {
  std::vector<std::string> pos;
  if (!accept(args, 2, 2, &pos)) return usage();
  Result<lzw::CompressedImage> image = lzw::try_read_image_file(pos[0]);
  if (!image.ok()) {
    std::fprintf(stderr, "%s: %s\n", pos[0].c_str(),
                 image.error().describe().c_str());
    return 1;
  }
  // decode_image handles every container version: v1/v2 through the LZW
  // image decoder, v3 through the per-chunk codec registry.
  const Result<bits::TritVector> decoded = codec::decode_image(image.value());
  if (!decoded.ok()) {
    std::fprintf(stderr, "%s: %s\n", pos[0].c_str(),
                 decoded.error().describe().c_str());
    return 1;
  }

  scan::TestSet out;
  out.circuit = "decompressed";
  // Without side information the stream is one long vector; emit it as a
  // single-pattern set (downstream tools re-split by their known width).
  out.width = static_cast<std::uint32_t>(decoded.value().size());
  out.cubes.push_back(decoded.value());
  scan::write_tests_file(pos[1], out);
  std::printf("%s: %llu %s -> %llu bits -> %s\n", pos[0].c_str(),
              static_cast<unsigned long long>(image.value().code_count),
              image.value().multi_codec() ? "records" : "codes",
              static_cast<unsigned long long>(decoded.value().size()),
              pos[1].c_str());
  return 0;
}

int cmd_inspect(exp::Args& args) {
  std::vector<std::string> pos;
  if (!accept(args, 1, 1, &pos)) return usage();
  const std::string& path = pos[0];
  if (Result<lzw::CompressedImage> image = lzw::try_read_image_file(path);
      image.ok()) {
    const lzw::CompressedImage& img = image.value();
    std::printf("%s: TDCLZW%u image, %s%s, %llu codes, %llu original bits,"
                " %llu payload bits (ratio %.2f%%)\n",
                path.c_str(), img.container.version,
                img.config.describe().c_str(),
                img.config.variable_width ? " variable-width" : "",
                static_cast<unsigned long long>(img.code_count),
                static_cast<unsigned long long>(img.original_bits),
                static_cast<unsigned long long>(img.stream.bit_count()),
                (1.0 - static_cast<double>(img.stream.bit_count()) /
                           static_cast<double>(img.original_bits)) *
                    100.0);
    std::printf("%s\n", container_line(img.container).c_str());
    if (img.multi_codec()) {
      // Per-record codec names plus the payload-size distribution.
      obs::LocalHistogram record_sizes;
      std::vector<std::pair<std::string, std::size_t>> counts;
      for (const lzw::ChunkRecord& r : img.chunks) {
        record_sizes.record(r.payload.size());
        const codec::Codec* c = codec::codec_for_id(r.codec_id);
        const std::string name = c != nullptr
                                     ? codec::to_string(c->id())
                                     : "id" + std::to_string(r.codec_id);
        bool found = false;
        for (auto& [n, count] : counts) {
          if (n == name) { ++count; found = true; break; }
        }
        if (!found) counts.emplace_back(name, 1);
      }
      std::string per_chunk;
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i != 0) per_chunk += ", ";
        per_chunk += counts[i].first + " x" + std::to_string(counts[i].second);
      }
      std::printf("chunk codecs: %s\n", per_chunk.c_str());
      std::printf("record payload bytes: %s\n",
                  obs::snapshot_summary_line(record_sizes.snapshot()).c_str());
    } else if (img.container.chunk_count > 0) {
      // Per-chunk payload-size distribution through the shared obs
      // histogram — every chunk is chunk_bytes except the final remainder.
      obs::LocalHistogram chunk_sizes;
      const lzw::ContainerInfo& c = img.container;
      for (std::uint32_t i = 0; i < c.chunk_count; ++i) {
        const std::uint64_t size =
            i + 1 < c.chunk_count
                ? c.chunk_bytes
                : c.payload_bytes -
                      static_cast<std::uint64_t>(c.chunk_count - 1) * c.chunk_bytes;
        chunk_sizes.record(size);
      }
      std::printf("chunk payload bytes: %s\n",
                  obs::snapshot_summary_line(chunk_sizes.snapshot()).c_str());
    }
    return 0;
  }
  // Not a readable container: try the .tests format.
  const scan::TestSet tests = scan::read_tests_file(path);
  std::printf("%s: test set '%s', %llu patterns x %u bits, %.1f%% don't-cares\n",
              path.c_str(), tests.circuit.c_str(),
              static_cast<unsigned long long>(tests.pattern_count()), tests.width,
              100.0 * tests.x_density());
  return 0;
}

/// Full integrity + decode check of one container; the returned line goes
/// to stdout on success, stderr on failure.
struct VerifyOutcome {
  bool ok = false;
  std::string line;
};

VerifyOutcome verify_one(const std::string& path) {
  VerifyOutcome out;
  Result<lzw::CompressedImage> image = lzw::try_read_image_file(path);
  if (!image.ok()) {
    out.line = path + ": FAILED " + image.error().describe();
    return out;
  }
  const Result<bits::TritVector> decoded = codec::decode_image(image.value());
  if (!decoded.ok()) {
    out.line = path + ": FAILED " + decoded.error().describe();
    return out;
  }
  const lzw::ContainerInfo& c = image.value().container;
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "%s: OK — %s; %llu %s decode to %llu scan bits%s",
                path.c_str(), container_line(c).c_str(),
                static_cast<unsigned long long>(image.value().code_count),
                image.value().multi_codec() ? "records" : "codes",
                static_cast<unsigned long long>(decoded.value().size()),
                c.crc_protected() ? ""
                                  : " (legacy format: decode check only, no CRC)");
  out.ok = true;
  out.line = buf;
  return out;
}

int cmd_verify(exp::Args& args) {
  const unsigned jobs = args.jobs();
  std::vector<std::string> pos;
  if (!accept(args, 1, 9999, &pos)) return usage();

  // Several files verify in parallel (--jobs N / $TDC_JOBS); output stays
  // in argument order either way.
  exp::ThreadPool pool(std::min<unsigned>(jobs, static_cast<unsigned>(pos.size())));
  const auto outcomes = exp::parallel_map(pool, pos, verify_one);
  int failures = 0;
  for (const VerifyOutcome& out : outcomes) {
    if (out.ok) {
      std::printf("%s\n", out.line.c_str());
    } else {
      std::fprintf(stderr, "%s\n", out.line.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

int cmd_batch(exp::Args& args) {
  engine::EngineOptions options;
  options.workers = args.jobs();
  options.fail_fast = args.flag("--fail-fast");
  options.verify = !args.flag("--no-verify");
  options.queue_capacity = args.u32("--queue", 0);
  if (const auto dir = args.value("--out-dir")) options.output_dir = *dir;
  const std::optional<std::string> metrics_path = args.value("--metrics");

  std::vector<std::string> pos;
  if (!accept(args, 1, 1, &pos)) return usage();

  Result<engine::Manifest> manifest = engine::load_manifest(pos[0]);
  if (!manifest.ok()) {
    std::fprintf(stderr, "%s: %s\n", pos[0].c_str(),
                 manifest.error().describe().c_str());
    return 1;
  }

  engine::Engine eng(options);
  const engine::BatchResult result =
      eng.run(manifest.value(), [](const engine::JobOutcome& job) {
        if (job.cancelled) {
          std::printf("  %-16s cancelled\n", job.name.c_str());
        } else if (!job.status.ok()) {
          std::printf("  %-16s FAILED %s\n", job.name.c_str(),
                      job.status.error().describe().c_str());
        } else {
          std::printf("  %-16s %llu -> %llu bits (%.2f%%)%s%s\n",
                      job.name.c_str(),
                      static_cast<unsigned long long>(job.original_bits),
                      static_cast<unsigned long long>(job.compressed_bits),
                      job.ratio_percent,
                      job.output_path.empty() ? "" : " -> ",
                      job.output_path.c_str());
        }
      });

  std::printf("\n%s\n", result.report().c_str());
  std::printf("batch: %zu jobs, %zu ok, %zu failed, %zu cancelled in %.2fs "
              "(%.1f jobs/sec)\n",
              result.jobs.size(), result.ok_count(), result.failed_count(),
              result.cancelled_count(), result.wall_seconds,
              result.wall_seconds > 0
                  ? static_cast<double>(result.jobs.size()) / result.wall_seconds
                  : 0.0);
  if (metrics_path) {
    std::ofstream out(*metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path->c_str());
      return 1;
    }
    out << eng.metrics().to_json();
    std::printf("metrics -> %s\n", metrics_path->c_str());
  }
  return result.failed_count() == 0 ? 0 : 1;
}

// --- tdcd daemon (serve) and its command-line client -----------------------

/// The signal handler's route to the server: request_stop() is
/// async-signal-safe (one self-pipe write), so SIGINT/SIGTERM translate
/// directly into a graceful drain.
service::Server* g_server = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int cmd_serve(exp::Args& args) {
  service::ServerOptions options;
  options.workers = args.jobs();
  options.max_in_flight = args.u32("--max-in-flight", 0);
  options.max_connections = args.u32("--max-connections", 64);
  options.verify = !args.flag("--no-verify");
  options.io_timeout_ms =
      static_cast<int>(args.u32("--io-timeout-ms", 30000));
  options.log_sink = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);  // scripts wait for the "server.listen" line
  };
  const std::string level_name = args.value("--log-level").value_or("info");
  options.log_level = obs::parse_log_level(level_name);
  if (options.log_level == obs::LogLevel::Off && level_name != "off") {
    std::fprintf(stderr, "bad --log-level: %s\n", level_name.c_str());
    return usage();
  }
  options.log_rate_per_sec =
      static_cast<double>(args.u32("--log-rate", 0));
  options.metrics_log_path = args.value("--metrics-log").value_or("");
  options.metrics_interval_ms =
      static_cast<int>(args.u32("--metrics-interval-ms", 1000));
  std::vector<std::string> pos;
  if (!accept(args, 1, 1, &pos)) return usage();
  options.socket_path = pos[0];

  service::Server server(std::move(options));
  if (Status s = server.start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.error().describe().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
  const int rc = server.wait();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  g_server = nullptr;
  return rc;
}

std::optional<std::string> read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

bool write_file_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  return static_cast<bool>(out.write(bytes.data(),
                                     static_cast<std::streamsize>(bytes.size())));
}

int cmd_client(exp::Args& args) {
  service::ClientOptions options;
  options.connect_wait_ms =
      static_cast<int>(args.u32("--connect-wait-ms", 5000));
  options.io_timeout_ms = static_cast<int>(args.u32("--io-timeout-ms", 60000));
  // Every request carries a trace id so daemon-side spans can be joined
  // back to this invocation; --trace-id overrides the pid-derived default.
  options.trace_id =
      args.value("--trace-id").value_or("cli-" + std::to_string(::getpid()));

  // compress knobs, forwarded as frame params (only when given, so the
  // daemon's defaults — identical to the offline tool's — apply otherwise).
  std::vector<std::pair<std::string, std::string>> params;
  for (const char* flag : {"--dict", "--char", "--entry"}) {
    if (const auto v = args.value(flag)) {
      params.emplace_back(flag + 2, *v);  // strip "--"
    }
  }
  if (const auto v = args.value("--chunk-trits")) {
    params.emplace_back("chunk_trits", *v);
  }
  if (const auto v = args.value("--chunk-bytes")) params.emplace_back("chunk", *v);
  if (const auto v = args.value("--codec")) params.emplace_back("codec", *v);
  if (args.flag("--variable")) params.emplace_back("variable", "1");
  if (args.flag("--v1")) params.emplace_back("container", "1");
  const bool openmetrics = args.flag("--openmetrics");
  const std::optional<std::string> out_path = args.value("--out");

  std::vector<std::string> pos;
  if (!accept(args, 2, 4, &pos)) return usage();
  const std::string& socket_path = pos[0];
  const std::string& op = pos[1];

  options.socket_path = socket_path;
  Result<service::Client> client = service::Client::connect(options);
  if (!client.ok()) {
    std::fprintf(stderr, "%s: %s\n", socket_path.c_str(),
                 client.error().describe().c_str());
    return 1;
  }

  const auto fail = [](const std::string& what, const Error& error) {
    std::fprintf(stderr, "%s: %s\n", what.c_str(), error.describe().c_str());
    return 1;
  };

  if (op == "ping") {
    if (pos.size() != 2) return usage();
    Result<service::Frame> resp = client.value().call("ping", {}, "tdc");
    if (!resp.ok()) return fail(socket_path, resp.error());
    std::printf("%s: pong (%zu B echoed)\n", socket_path.c_str(),
                resp.value().payload.size());
    return 0;
  }

  if (op == "compress" || op == "decompress") {
    if (pos.size() != 4) return usage();
    const std::optional<std::string> input = read_file_bytes(pos[2]);
    if (!input) {
      std::fprintf(stderr, "cannot read %s\n", pos[2].c_str());
      return 1;
    }
    Result<service::Frame> resp =
        client.value().call(op, std::move(params), std::move(*input));
    if (!resp.ok()) return fail(pos[2], resp.error());
    if (!write_file_bytes(pos[3], resp.value().payload)) {
      std::fprintf(stderr, "cannot write %s\n", pos[3].c_str());
      return 1;
    }
    const service::Frame& r = resp.value();
    if (op == "compress") {
      std::printf("%s: %s -> %s bits (ratio %s%%, TDCLZW v%s) -> %s\n",
                  pos[2].c_str(), r.param("original_bits").c_str(),
                  r.param("compressed_bits").c_str(), r.param("ratio").c_str(),
                  r.param("version").c_str(), pos[3].c_str());
    } else {
      std::printf("%s: %s codes -> %s bits -> %s\n", pos[2].c_str(),
                  r.param("codes").c_str(), r.param("bits").c_str(),
                  pos[3].c_str());
    }
    return 0;
  }

  if (op == "verify" || op == "inspect") {
    if (pos.size() != 3) return usage();
    const std::optional<std::string> input = read_file_bytes(pos[2]);
    if (!input) {
      std::fprintf(stderr, "cannot read %s\n", pos[2].c_str());
      return 1;
    }
    Result<service::Frame> resp = client.value().call(op, {}, std::move(*input));
    if (!resp.ok()) return fail(pos[2], resp.error());
    std::printf(op == "verify" ? "%s: %s\n" : "%s: %s", pos[2].c_str(),
                resp.value().payload.c_str());
    return 0;
  }

  if (op == "stats") {
    if (pos.size() != 2) return usage();
    // --openmetrics swaps the registry-JSON payload for the OpenMetrics
    // text exposition (the daemon's `metrics` op).
    Result<service::Frame> resp =
        client.value().call(openmetrics ? "metrics" : "stats");
    if (!resp.ok()) return fail(socket_path, resp.error());
    return emit_text(out_path, resp.value().payload);
  }

  std::fprintf(stderr, "unknown client op: %s\n", op.c_str());
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  exp::Args args(argc - 2, argv + 2);

  // --trace <file> / $TDC_TRACE: record every span of this invocation and
  // flush them as Chrome trace_event JSON (Perfetto / chrome://tracing) on
  // the way out — including the error paths.
  std::optional<std::string> trace_path = args.value("--trace");
  if (!trace_path) {
    if (const char* env = std::getenv("TDC_TRACE"); env != nullptr && *env != '\0') {
      trace_path = env;
    }
  }
  if (trace_path) obs::TraceRecorder::global().enable(*trace_path);

  int rc = 2;
  try {
    if (cmd == "gen") rc = cmd_gen(args);
    else if (cmd == "compress") rc = cmd_compress(args);
    else if (cmd == "decompress") rc = cmd_decompress(args);
    else if (cmd == "inspect" || cmd == "info") rc = cmd_inspect(args);
    else if (cmd == "verify") rc = cmd_verify(args);
    else if (cmd == "batch") rc = cmd_batch(args);
    else if (cmd == "stats") rc = cmd_stats(args);
    else if (cmd == "convert") rc = cmd_convert(args);
    else if (cmd == "wave") rc = cmd_wave(args);
    else if (cmd == "serve") rc = cmd_serve(args);
    else if (cmd == "client") rc = cmd_client(args);
    else rc = usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  if (trace_path && !obs::TraceRecorder::global().flush() && rc == 0) rc = 1;
  return rc;
}
