// Command-line front end — the "compression tool" box of the paper's
// Fig. 1 as a downstream user would run it:
//
//   tdc_cli gen <circuit> <out.tests>            synthesize + ATPG a suite
//                                                circuit into a cube file
//   tdc_cli compress <in.tests> <out.tdclzw>     [--dict N] [--char C]
//                                                [--entry E] [--variable]
//   tdc_cli decompress <in.tdclzw> <out.tests>   expand to full vectors
//   tdc_cli info <file>                          describe either format
//   tdc_cli stats <netlist>                      structural report
//                                                (.bench or .v by extension)
//   tdc_cli convert <in> <out>                   .bench <-> .v
//   tdc_cli wave <in.tdclzw> <out.vcd> [k]       GTKWave dump of the
//                                                decompressor running the
//                                                image at clock ratio k
//
// The .tests format is the plain-text cube format of scan/testset_io.h;
// .tdclzw is the binary compressed image of lzw/stream_io.h.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "exp/flow.h"
#include "hw/decompressor_rtl.h"
#include "lzw/stream_io.h"
#include "lzw/verify.h"
#include "netlist/bench_io.h"
#include "netlist/stats.h"
#include "netlist/verilog_io.h"
#include "scan/testset_io.h"

namespace {

using namespace tdc;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tdc_cli gen <circuit> <out.tests>\n"
               "  tdc_cli compress <in.tests> <out.tdclzw> [--dict N] [--char C]"
               " [--entry E] [--variable]\n"
               "  tdc_cli decompress <in.tdclzw> <out.tests>\n"
               "  tdc_cli info <file>\n"
               "  tdc_cli stats <netlist.bench|netlist.v>\n"
               "  tdc_cli convert <in.bench|in.v> <out.bench|out.v>\n"
               "  tdc_cli wave <in.tdclzw> <out.vcd> [clock_ratio]\n");
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

netlist::Netlist load_netlist(const std::string& path) {
  if (ends_with(path, ".v")) return netlist::parse_verilog_file(path);
  return netlist::parse_bench_file(path);
}

int cmd_wave(int argc, char** argv) {
  if (argc < 2 || argc > 3) return usage();
  const lzw::CompressedImage image = lzw::read_image_file(argv[0]);
  const std::uint32_t k =
      argc == 3 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 10;

  // Rebuild an EncodeResult view of the image for the RTL model.
  lzw::EncodeResult encoded;
  encoded.config = image.config;
  encoded.original_bits = image.original_bits;
  const auto decoded = image.decode();  // validates the stream
  encoded.stream = image.stream;
  // The RTL model reads codes from the stream; it only needs the count.
  encoded.codes.resize(image.code_count);

  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  hw::VcdWriter vcd(out, "lzw_decompressor");
  const hw::DecompressorRtl rtl(hw::HwConfig{.lzw = image.config, .clock_ratio = k});
  const auto run = rtl.run(encoded, &vcd);
  std::printf("%s: %llu internal cycles at %ux -> %s (%llu scan bits)\n", argv[0],
              static_cast<unsigned long long>(run.internal_cycles), k, argv[1],
              static_cast<unsigned long long>(decoded.bits.size()));
  return 0;
}

int cmd_stats(int argc, char** argv) {
  if (argc != 1) return usage();
  const netlist::Netlist nl = load_netlist(argv[0]);
  std::printf("%s", netlist::analyze(nl).report().c_str());
  return 0;
}

int cmd_convert(int argc, char** argv) {
  if (argc != 2) return usage();
  const netlist::Netlist nl = load_netlist(argv[0]);
  std::ofstream out(argv[1]);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 1;
  }
  if (ends_with(argv[1], ".v")) {
    netlist::write_verilog(out, nl);
  } else {
    netlist::write_bench(out, nl);
  }
  std::printf("%s -> %s (%u nodes)\n", argv[0], argv[1], nl.gate_count());
  return 0;
}

int cmd_gen(int argc, char** argv) {
  if (argc != 2) return usage();
  const exp::PreparedCircuit pc = exp::prepare(argv[0]);
  scan::write_tests_file(argv[1], pc.tests);
  std::printf("%s: %llu patterns x %u bits (%.1f%% X), coverage %.2f%% -> %s\n",
              argv[0], static_cast<unsigned long long>(pc.tests.pattern_count()),
              pc.tests.width, 100.0 * pc.tests.x_density(), pc.fault_coverage,
              argv[1]);
  return 0;
}

int cmd_compress(int argc, char** argv) {
  if (argc < 2) return usage();
  const scan::TestSet tests = scan::read_tests_file(argv[0]);
  lzw::LzwConfig config;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--variable") {
      config.variable_width = true;
    } else if (i + 1 < argc && a == "--dict") {
      config.dict_size = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (i + 1 < argc && a == "--char") {
      config.char_bits = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (i + 1 < argc && a == "--entry") {
      config.entry_bits = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else {
      return usage();
    }
  }
  config.validate();

  const bits::TritVector stream = tests.serialize();
  const auto encoded = lzw::Encoder(config).encode(stream);
  const auto report = lzw::verify_roundtrip(stream, encoded);
  if (!report.ok) {
    std::fprintf(stderr, "internal verification failed: %s\n", report.error.c_str());
    return 1;
  }
  lzw::write_image_file(argv[1], encoded);
  std::printf("%s: %llu -> %llu bits (ratio %.2f%%, %s) -> %s\n", argv[0],
              static_cast<unsigned long long>(encoded.original_bits),
              static_cast<unsigned long long>(encoded.compressed_bits()),
              encoded.ratio_percent(), config.describe().c_str(), argv[1]);
  return 0;
}

int cmd_decompress(int argc, char** argv) {
  if (argc != 2) return usage();
  const lzw::CompressedImage image = lzw::read_image_file(argv[0]);
  const lzw::DecodeResult decoded = image.decode();

  scan::TestSet out;
  out.circuit = "decompressed";
  // Without side information the stream is one long vector; emit it as a
  // single-pattern set (downstream tools re-split by their known width).
  out.width = static_cast<std::uint32_t>(decoded.bits.size());
  out.cubes.push_back(decoded.bits);
  scan::write_tests_file(argv[1], out);
  std::printf("%s: %llu codes -> %llu bits -> %s\n", argv[0],
              static_cast<unsigned long long>(image.code_count),
              static_cast<unsigned long long>(decoded.bits.size()), argv[1]);
  return 0;
}

int cmd_info(int argc, char** argv) {
  if (argc != 1) return usage();
  const std::string path = argv[0];
  try {
    const lzw::CompressedImage image = lzw::read_image_file(path);
    std::printf("%s: TDCLZW1 image, %s%s, %llu codes, %llu original bits,"
                " %llu payload bits (ratio %.2f%%)\n",
                path.c_str(), image.config.describe().c_str(),
                image.config.variable_width ? " variable-width" : "",
                static_cast<unsigned long long>(image.code_count),
                static_cast<unsigned long long>(image.original_bits),
                static_cast<unsigned long long>(image.stream.bit_count()),
                (1.0 - static_cast<double>(image.stream.bit_count()) /
                           static_cast<double>(image.original_bits)) *
                    100.0);
    return 0;
  } catch (const std::exception&) {
    // fall through: try the .tests format
  }
  const scan::TestSet tests = scan::read_tests_file(path);
  std::printf("%s: test set '%s', %llu patterns x %u bits, %.1f%% don't-cares\n",
              path.c_str(), tests.circuit.c_str(),
              static_cast<unsigned long long>(tests.pattern_count()), tests.width,
              100.0 * tests.x_density());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "gen") return cmd_gen(argc - 2, argv + 2);
    if (cmd == "compress") return cmd_compress(argc - 2, argv + 2);
    if (cmd == "decompress") return cmd_decompress(argc - 2, argv + 2);
    if (cmd == "info") return cmd_info(argc - 2, argv + 2);
    if (cmd == "stats") return cmd_stats(argc - 2, argv + 2);
    if (cmd == "convert") return cmd_convert(argc - 2, argv + 2);
    if (cmd == "wave") return cmd_wave(argc - 2, argv + 2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
