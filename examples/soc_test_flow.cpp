// The paper's Figures 1 and 2 in action — the complete SoC test flow:
//
//   test insertion & ATPG  ->  LZW compression with dynamic X assignment
//   (Fig. 1, workstation)      (Fig. 1, compression tool)
//
//   ATE tester download    ->  on-chip LZW decompressor -> scan chain
//   (Fig. 2, tester data)      (Fig. 2, embedded core + reused memory)
//
// Everything runs for real: a full-scan circuit is synthesized, PODEM
// generates the cubes, the stream is compressed, the cycle-accurate
// hardware model decompresses it, and the delivered vectors are fault-
// graded to show silicon-equivalent coverage.
//
//   build/examples/soc_test_flow [circuit]   (default itc_b13f)
#include <cstdio>

#include "atpg/atpg.h"
#include "exp/flow.h"
#include "fault/fault.h"
#include "gen/suite.h"
#include "hw/decompressor.h"
#include "lzw/encoder.h"

int main(int argc, char** argv) {
  using namespace tdc;
  const std::string name = argc > 1 ? argv[1] : "itc_b13f";
  const auto& profile = gen::find_profile(name);

  // --- Fig. 1: test generation workstation -------------------------------
  std::printf("[1] synthesizing full-scan circuit %s ...\n", name.c_str());
  const netlist::Netlist nl = gen::build_circuit(profile);
  std::printf("    %u gates, %zu PIs, %zu scan cells, %zu POs -> scan vector width %u\n",
              nl.gate_count(), nl.inputs().size(), nl.dffs().size(),
              nl.outputs().size(), nl.scan_vector_width());

  std::printf("[2] deterministic ATPG (PODEM + fault dropping) ...\n");
  atpg::AtpgOptions opt;
  opt.compaction_window = profile.compaction_window;
  const atpg::AtpgResult atpg_result = atpg::generate_tests(nl, opt);
  const scan::TestSet tests =
      atpg_result.tests.vertically_filled(profile.fill_fraction, 1);
  std::printf("    %zu faults, %.2f%% coverage, %llu patterns, %.1f%% don't-cares\n",
              atpg_result.stats.total_faults, atpg_result.stats.fault_coverage(),
              static_cast<unsigned long long>(tests.pattern_count()),
              100.0 * tests.x_density());

  std::printf("[3] LZW compression with dynamic don't-care assignment ...\n");
  const lzw::LzwConfig config = exp::paper_lzw_config(profile);
  const bits::TritVector stream = tests.serialize();
  const auto encoded = lzw::Encoder(config).encode(stream);
  std::printf("    %s\n", config.describe().c_str());
  std::printf("    %llu -> %llu bits: compression ratio %.2f%%\n",
              static_cast<unsigned long long>(encoded.original_bits),
              static_cast<unsigned long long>(encoded.compressed_bits()),
              encoded.ratio_percent());

  // --- Fig. 2: tester + embedded core ------------------------------------
  std::printf("[4] on-chip decompression (cycle-accurate Fig. 5 model, 10x clock) ...\n");
  const hw::DecompressorModel model(hw::HwConfig{.lzw = config, .clock_ratio = 10});
  const hw::HwRunResult run = model.run(encoded);
  std::printf("    dictionary memory %s (reused via Fig. 6 BIST muxing)\n",
              model.memory().geometry().c_str());
  std::printf("    %llu internal cycles -> download improvement %.2f%%\n",
              static_cast<unsigned long long>(run.internal_cycles),
              run.improvement_percent(10));

  std::printf("[5] verifying the delivered scan data ...\n");
  if (!stream.covered_by(run.scan_bits)) {
    std::printf("    ERROR: scan stream violates a care bit!\n");
    return 1;
  }
  const auto patterns = tests.deserialize(run.scan_bits);
  const double coverage =
      atpg::fault_coverage(nl, fault::collapsed_fault_list(nl), patterns);
  std::printf("    every care bit preserved; delivered-vector coverage %.2f%%\n",
              coverage);
  std::printf("done.\n");
  return 0;
}
