// Reproduces the paper's Figures 3 and 4: the step-by-step LZW compression
// and decompression tables for a 1-bit-character message, printed from the
// live encoder/decoder (not a hand simulation). Includes the Fig. 4f
// "code not yet in the dictionary" (KwKwK) special case.
//
//   build/examples/paper_walkthrough
#include <cstdio>
#include <string>
#include <vector>

#include "bits/tritvector.h"
#include "lzw/decoder.h"
#include "lzw/dictionary.h"
#include "lzw/encoder.h"

namespace {

using namespace tdc;

std::string code_name(std::uint32_t code) {
  return code == lzw::kNoCode ? "-" : std::to_string(code);
}

void walkthrough(const char* title, const std::string& message) {
  const lzw::LzwConfig config{.dict_size = 8, .char_bits = 1, .entry_bits = 8};
  const auto input = bits::TritVector::from_string(message);

  std::printf("%s\n  uncompressed input: %s\n\n", title, message.c_str());
  std::printf("  %-5s %-7s %-6s %-7s %-10s   (Fig. 3 format)\n", "step", "buffer",
              "input", "output", "new entry");

  lzw::Dictionary shadow(config);  // expands entries for pretty-printing
  char step_label = 'a';
  const lzw::Encoder encoder(config);
  const auto encoded = encoder.encode(
      input, lzw::XAssignMode::Dynamic, 1, [&](const lzw::EncoderStep& step) {
        std::string in = step.char_index < (input.size() + config.char_bits - 1) /
                                               config.char_bits
                             ? ((step.char_care & 1) == 0 ? "X"
                                : (step.char_value & 1) != 0 ? "1" : "0")
                             : "(end)";
        std::string entry = "-";
        if (step.new_entry != lzw::kNoCode) {
          const auto code =
              shadow.add(step.buffer_before, static_cast<std::uint32_t>(
                                                 step.char_value & step.char_care));
          std::string bits;
          for (const auto c : shadow.expand(code)) bits += c != 0 ? '1' : '0';
          entry = std::to_string(code) + "(" + bits + ")";
        }
        std::printf("  %-5c %-7s %-6s %-7s %-10s\n", step_label++,
                    code_name(step.buffer_before).c_str(), in.c_str(),
                    code_name(step.emitted).c_str(), entry.c_str());
      });

  std::printf("\n  compressed output:");
  for (const auto c : encoded.codes) std::printf(" %u", c);
  std::printf("   (%llu -> %llu bits)\n\n",
              static_cast<unsigned long long>(encoded.original_bits),
              static_cast<unsigned long long>(encoded.compressed_bits()));

  // ---- Figure 4: decompression rebuilds the dictionary from the codes.
  std::printf("  decompression (Fig. 4 format):\n");
  std::printf("  %-5s %-7s %-6s %-12s %-10s\n", "step", "buffer", "input", "output",
              "new entry");
  lzw::Dictionary dict(config);
  std::uint32_t prev = lzw::kNoCode;
  step_label = 'a';
  std::string recovered;
  for (const auto code : encoded.codes) {
    std::vector<std::uint32_t> entry;
    const bool kwkwk = !dict.defined(code);
    if (kwkwk) {
      entry = dict.expand(prev);
      entry.push_back(dict.first_char(prev));
    } else {
      entry = dict.expand(code);
    }
    std::string created = "-";
    if (prev != lzw::kNoCode) {
      const auto c = dict.add(prev, entry.front());
      if (c != lzw::kNoCode) {
        std::string bits;
        for (const auto ch : dict.expand(c)) bits += ch != 0 ? '1' : '0';
        created = std::to_string(c) + "(" + bits + ")";
      }
    }
    std::string out;
    for (const auto ch : entry) out += ch != 0 ? '1' : '0';
    recovered += out;
    std::printf("  %-5c %-7s %-6u %-12s %-10s%s\n", step_label++,
                code_name(prev).c_str(), code, out.c_str(), created.c_str(),
                kwkwk ? "   <- code not yet defined (KwKwK)" : "");
    prev = code;
  }
  recovered.resize(input.size());
  std::printf("\n  recovered: %s\n", recovered.c_str());

  // Cross-check against the reference decoder.
  const auto decoded =
      lzw::Decoder(config).decode(encoded.codes, encoded.original_bits);
  std::printf("  reference decoder agrees: %s\n",
              decoded.bits.to_string() == recovered ? "yes" : "NO");
  std::printf("  care bits preserved:      %s\n\n",
              input.covered_by(decoded.bits) ? "yes" : "NO");
}

}  // namespace

int main() {
  // A fully specified message first (the classic Fig. 3 walk) ...
  walkthrough("=== Figure 3/4 walkthrough (specified message) ===", "110001100011");
  // ... the KwKwK case of Fig. 4f ...
  walkthrough("=== KwKwK special case (paper Fig. 4f) ===", "111111");
  // ... and the paper's actual contribution: the same walk with don't-cares
  // bound dynamically to whatever keeps the dictionary matching.
  walkthrough("=== Dynamic don't-care assignment (paper Sec. 5) ===",
              "1X0X011XX0X1");
  return 0;
}
