// The paper's §6/§7 engineering-tradeoff discussion as a tool: sweep the
// decompressor design space (dictionary size N, character width C_C, entry
// width C_MDATA) for one circuit and report, under a given on-chip memory
// budget, which configuration maximizes compression and which maximizes
// download improvement.
//
// Grid points are independent, so they fan out across a thread pool
// (--jobs N / $TDC_JOBS); results are collected in grid order, making the
// output identical for any worker count.
//
//   build/examples/design_space_explorer [circuit] [memory_budget_bits] [--jobs N]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "exp/flow.h"
#include "exp/table.h"
#include "exp/thread_pool.h"
#include "hw/decompressor.h"
#include "lzw/encoder.h"

int main(int argc, char** argv) {
  using namespace tdc;
  const unsigned jobs = exp::sweep_jobs(argc, argv);
  const std::string name = argc > 1 ? argv[1] : "s9234f";
  const std::uint64_t budget = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                        : 128 * 1024;  // bits of reusable RAM

  const auto& profile = gen::find_profile(name);
  const exp::PreparedCircuit pc = exp::prepare(profile);
  const bits::TritVector stream = pc.tests.serialize();

  std::printf("Design-space exploration for %s (budget %llu memory bits)\n\n",
              name.c_str(), static_cast<unsigned long long>(budget));

  std::vector<lzw::LzwConfig> grid;
  for (const std::uint32_t n : {256u, 512u, 1024u, 2048u, 4096u}) {
    for (const std::uint32_t cc : {4u, 7u, 8u}) {
      if ((1u << cc) >= n) continue;  // degenerate: literals fill dictionary
      for (const std::uint32_t entry : {63u, 127u, 255u}) {
        grid.push_back(lzw::LzwConfig{.dict_size = n, .char_bits = cc,
                                      .entry_bits = entry});
      }
    }
  }

  struct Candidate {
    lzw::LzwConfig config;
    std::uint64_t memory_bits;
    double ratio;
    double improvement;
  };
  exp::ThreadPool pool(jobs);
  const auto candidates =
      exp::parallel_map(pool, grid, [&stream](const lzw::LzwConfig& config) {
        const auto encoded = lzw::Encoder(config).encode(stream);
        const hw::DecompressorModel model(
            hw::HwConfig{.lzw = config, .clock_ratio = 10});
        const double improvement = model.run(encoded).improvement_percent(10);
        return Candidate{config, model.memory().total_bits(),
                         encoded.ratio_percent(), improvement};
      });

  std::vector<Candidate> feasible;
  exp::Table table({"N", "C_C", "C_MDATA", "memory", "ratio", "improv@10x", "fits"});
  for (const Candidate& c : candidates) {
    const bool fits = c.memory_bits <= budget;
    if (fits) feasible.push_back(c);
    table.add_row({exp::num(c.config.dict_size), exp::num(c.config.char_bits),
                   exp::num(c.config.entry_bits), exp::num(c.memory_bits),
                   exp::pct(c.ratio), exp::pct(c.improvement),
                   fits ? "yes" : "no"});
  }
  std::printf("%s\n", table.render().c_str());

  if (feasible.empty()) {
    std::printf("no configuration fits the budget\n");
    return 1;
  }
  const auto best_ratio = *std::max_element(
      feasible.begin(), feasible.end(),
      [](const Candidate& a, const Candidate& b) { return a.ratio < b.ratio; });
  const auto best_perf = *std::max_element(
      feasible.begin(), feasible.end(), [](const Candidate& a, const Candidate& b) {
        return a.improvement < b.improvement;
      });
  std::printf("best compression within budget: %s -> %.2f%% (memory %llu bits)\n",
              best_ratio.config.describe().c_str(), best_ratio.ratio,
              static_cast<unsigned long long>(best_ratio.memory_bits));
  std::printf("best download time within budget: %s -> %.2f%% (memory %llu bits)\n",
              best_perf.config.describe().c_str(), best_perf.improvement,
              static_cast<unsigned long long>(best_perf.memory_bits));
  return 0;
}
