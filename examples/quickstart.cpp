// Quickstart: compress a scan test-cube set with don't-care-aware LZW,
// decompress it, and verify the round trip — the five-minute tour of the
// public API.
//
//   build/examples/quickstart
#include <cstdio>

#include "bits/tritvector.h"
#include "lzw/config.h"
#include "lzw/decoder.h"
#include "lzw/encoder.h"
#include "lzw/verify.h"
#include "scan/testset.h"

int main() {
  using namespace tdc;

  // A test set is a list of ternary cubes ('0', '1', 'X' = don't-care),
  // one per scan pattern. Real cube sets come out of the ATPG flow (see
  // soc_test_flow); here we type a tiny one in by hand.
  scan::TestSet tests;
  tests.circuit = "demo";
  tests.width = 24;
  for (const char* cube : {
           "1XXX0XXXXXXX10XXXXXX0XXX",
           "XXXX0XXX1XXX10XXXXXXXXXX",
           "1XXXXXXX1XXXXXXXXX0X0XXX",
           "XXX10XXXXXXX1XXXXX0XXXXX",
           "1XXX0XXX1XXX10XXXX0X0XXX",
       }) {
    tests.cubes.push_back(bits::TritVector::from_string(cube));
  }

  // The single-scan-chain download stream the tester would deliver.
  const bits::TritVector stream = tests.serialize();
  std::printf("test set: %llu patterns x %u bits, %.1f%% don't-cares\n",
              static_cast<unsigned long long>(tests.pattern_count()), tests.width,
              100.0 * tests.x_density());

  // Configure the codec: dictionary size N, character width C_C, dictionary
  // entry width C_MDATA (the embedded-memory word bound).
  const lzw::LzwConfig config{.dict_size = 64, .char_bits = 4, .entry_bits = 32};
  config.validate();
  std::printf("LZW config: %s\n", config.describe().c_str());

  // Compress. X bits are bound on the fly so the stream keeps matching
  // dictionary entries (the paper's dynamic don't-care assignment).
  const lzw::Encoder encoder(config);
  const lzw::EncodeResult encoded = encoder.encode(stream);
  std::printf("compressed: %llu -> %llu bits (ratio %.2f%%), %zu codes\n",
              static_cast<unsigned long long>(encoded.original_bits),
              static_cast<unsigned long long>(encoded.compressed_bits()),
              encoded.ratio_percent(), encoded.codes.size());

  // Decompress (the software model of the on-chip engine) and verify that
  // every care bit of the cube set survived.
  const lzw::Decoder decoder(config);
  const lzw::DecodeResult decoded =
      decoder.decode(encoded.codes, encoded.original_bits);
  std::printf("decoded stream: %s\n", decoded.bits.to_string().substr(0, 48).c_str());

  const lzw::VerifyReport report = lzw::verify_roundtrip(stream, encoded);
  std::printf("round-trip verification: %s\n",
              report.ok ? "OK" : report.error.c_str());
  return report.ok ? 0 : 1;
}
